//! The planner query server: deadlines, admission control, degradation.
//!
//! Request lifecycle:
//!
//! 1. **Accept.** A non-blocking acceptor stamps each connection with
//!    its arrival instant and `try_send`s it to the parse stage over a
//!    bounded channel. A full channel means the parse stage is
//!    saturated: the acceptor writes an immediate 429 shed response and
//!    closes — the one state this server never enters is "accepted but
//!    silent".
//! 2. **Parse + route.** Parse threads read the request behind a socket
//!    read timeout. `/healthz`, `/readyz`, `/surfaces` and `/metrics`
//!    (Prometheus text format) are answered inline — observability
//!    stays live however overloaded the evaluation stage is. Query
//!    endpoints are admitted to the bounded work queue; a full queue
//!    sheds with 429.
//! 3. **Evaluate.** Worker threads answer from the surrogate index in
//!    microseconds. A request older than its deadline is answered with
//!    a structured 504 *without* evaluating. `/plan?exact=1` attempts
//!    exact recomputation through an [`ArtifactCache`], guarded by the
//!    remaining deadline, a [`CircuitBreaker`], `catch_unwind`, and the
//!    chaos harness (`EFT_FAULT_PLAN` plants faults exactly like the
//!    sweep runner); every exact failure degrades to the clamped
//!    surrogate answer with `degraded: 1` and a `cause`, never an error.
//! 4. **Drain.** SIGTERM (or [`ServerHandle::shutdown`]) stops the
//!    acceptor, lets every admitted request finish, then joins all
//!    stages. In-flight work is completed, not dropped.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use eft_vqa::advisor::{plan, RegimePlan};
use eft_vqa::fidelity::Workload;
use eftq_numerics::SeedSequence;
use eftq_qec::DeviceModel;
use eftq_sweep::chaos::inject;
use eftq_sweep::{ArtifactCache, FaultPlan, Row};

use crate::breaker::CircuitBreaker;
use crate::http::{
    read_request, write_response, write_response_with_type, Request, METRICS_CONTENT_TYPE,
};
use crate::index::{metric_strategy, strategy_metric, SurfaceIndex, ADVISOR_METRICS, ADVISOR_SPEC};

/// Row label of error responses (shed, deadline, bad request).
pub const ERROR_LABEL: &str = "~planner-error";

/// Row label of health/readiness responses.
pub const HEALTH_LABEL: &str = "~planner-health";

/// Process-global SIGTERM latch (see [`install_sigterm_drain`]).
static SIGTERM_DRAIN: AtomicBool = AtomicBool::new(false);

/// How the server runs; [`ServerConfig::default`] suits tests and local
/// serving.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Per-request wall-clock deadline, measured from accept.
    pub deadline: Duration,
    /// Bound of the admission queue (and of the accept queue feeding
    /// the parse stage). Requests beyond it shed with 429.
    pub queue: usize,
    /// Evaluation worker threads.
    pub workers: usize,
    /// Parse/route threads.
    pub parsers: usize,
    /// Minimum remaining deadline to attempt exact recomputation; with
    /// less left, `/plan?exact=1` degrades straight to the surrogate.
    pub exact_budget: Duration,
    /// Consecutive exact failures that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker rejects exact attempts.
    pub breaker_cooldown: Duration,
    /// Chaos faults planted into exact-compute requests (request
    /// counter plays the point id). `None` in production.
    pub fault_plan: Option<FaultPlan>,
    /// Seed of the chaos derivation node.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            deadline: Duration::from_millis(250),
            queue: 64,
            workers: 4,
            parsers: 2,
            exact_budget: Duration::from_millis(50),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(2),
            fault_plan: None,
            seed: eftq_sweep::DEFAULT_SWEEP_SEED,
        }
    }
}

/// Load-shedding and serving counters (all monotonic).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests admitted to the work queue.
    pub admitted: AtomicU64,
    /// 200 responses (including degraded ones).
    pub served: AtomicU64,
    /// 200 responses stamped `degraded`.
    pub degraded: AtomicU64,
    /// Responses answered from the exact path.
    pub exact: AtomicU64,
    /// Exact attempts that failed (panic or overrun).
    pub exact_failures: AtomicU64,
    /// 429 responses (admission or accept queue full).
    pub shed: AtomicU64,
    /// 504 responses (deadline passed before evaluation).
    pub expired: AtomicU64,
    /// 400/404 responses.
    pub rejected: AtomicU64,
    /// Health/readiness/surfaces requests answered inline.
    pub inline: AtomicU64,
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`] then [`ServerHandle::join`] (or
/// [`ServerHandle::drain`]).
pub struct ServerHandle {
    addr: SocketAddr,
    drain: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (with the real port for `:0` configs).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Requests the drain: the acceptor stops, admitted requests
    /// finish. Returns immediately; [`ServerHandle::join`] waits.
    pub fn shutdown(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }

    /// Waits for every stage to finish (all in-flight requests
    /// answered).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// [`ServerHandle::shutdown`] + [`ServerHandle::join`].
    pub fn drain(self) {
        self.shutdown();
        self.join();
    }
}

/// Installs a SIGTERM handler that requests a drain on every server in
/// the process (servers poll the same latch the handler sets). Returns
/// whether the handler was installed (non-unix platforms skip it).
pub fn install_sigterm_drain() -> bool {
    #[cfg(unix)]
    {
        // Raw libc signal(2) through the symbols std already links —
        // the handler only stores to an atomic, which is async-signal
        // safe. No external crate needed.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_sigterm(_signum: i32) {
            SIGTERM_DRAIN.store(true, Ordering::SeqCst);
        }
        const SIGTERM: i32 = 15;
        const SIG_ERR: usize = usize::MAX;
        unsafe { signal(SIGTERM, on_sigterm as *const () as usize) != SIG_ERR }
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Whether a SIGTERM drain has been requested for this process.
pub fn sigterm_drain_requested() -> bool {
    SIGTERM_DRAIN.load(Ordering::SeqCst)
}

/// One admitted unit of work: a parsed request plus its connection and
/// arrival stamp.
struct Job {
    stream: TcpStream,
    request: Request,
    arrival: Instant,
}

/// Everything the route handlers need, shared across stages.
struct Engine {
    index: SurfaceIndex,
    cfg: ServerConfig,
    stats: Arc<ServerStats>,
    drain: Arc<AtomicBool>,
    breaker: Mutex<CircuitBreaker>,
    /// Exact plans keyed by (logical_qubits, device_qubits) — repeat
    /// queries for a region hit the cache instead of recomputing.
    exact_cache: ArtifactCache<(i64, i64), RegimePlan>,
    /// Chaos derivation node (same construction as the sweep runner).
    chaos: SeedSequence,
    /// Monotonic request id: the chaos plan's "point id".
    request_ids: AtomicU64,
    /// Per-server metrics registry behind `/metrics` (never global, so
    /// parallel test servers cannot share counters).
    metrics: eftq_obs::Registry,
    /// Request-latency histogram handle, cached off the registry lock
    /// (the per-response hot path).
    request_seconds: Arc<eftq_obs::Histogram>,
    /// Admission-queue depth gauge: +1 on admit, -1 on worker pickup.
    queue_depth: Arc<eftq_obs::Gauge>,
}

/// The bounded route label of a request path — unknown paths collapse
/// to `-` so a scanning client cannot mint unbounded metric series.
fn route_label(path: &str) -> &'static str {
    match path {
        "/plan" => "/plan",
        "/lookup" => "/lookup",
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        "/surfaces" => "/surfaces",
        "/metrics" => "/metrics",
        _ => "-",
    }
}

impl Engine {
    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || sigterm_drain_requested()
    }

    /// Records one finished response: the per-route/status request
    /// counter plus the end-to-end latency measured from accept. Every
    /// path that writes a response calls this exactly once, so the sum
    /// of `planner_requests_total` always equals the latency
    /// histogram's `_count`.
    fn observe(&self, route: &str, status: u16, arrival: Instant) {
        self.metrics
            .counter_with(
                "planner_requests_total",
                &[("route", route), ("status", &status.to_string())],
            )
            .inc();
        let ns = u64::try_from(arrival.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.request_seconds.observe_ns(ns);
    }

    /// The `/metrics` body: mirrors the server's own atomic counters
    /// into the registry (monotone `raise_to`, so a racing scrape never
    /// sees a series go backwards), stamps the state gauges, and
    /// renders the whole registry in Prometheus text format.
    fn metrics_body(&self) -> String {
        let s = &self.stats;
        for (name, value) in [
            ("planner_admitted_total", &s.admitted),
            ("planner_served_total", &s.served),
            ("planner_degraded_total", &s.degraded),
            ("planner_exact_total", &s.exact),
            ("planner_exact_failures_total", &s.exact_failures),
            ("planner_shed_total", &s.shed),
            ("planner_deadline_total", &s.expired),
            ("planner_rejected_total", &s.rejected),
            ("planner_inline_total", &s.inline),
        ] {
            self.metrics
                .counter(name)
                .raise_to(value.load(Ordering::Relaxed));
        }
        {
            let breaker = self.breaker.lock().expect("breaker poisoned");
            self.metrics
                .gauge("planner_breaker_state")
                .set(breaker.state_code(Instant::now()));
            self.metrics
                .counter("planner_breaker_trips_total")
                .raise_to(breaker.trips());
        }
        self.metrics
            .gauge("planner_surfaces_loaded")
            .set(self.index.len() as i64);
        self.metrics.render_prometheus()
    }

    /// Answers one routed request: `(status, JSONL body)`.
    fn answer(&self, request: &Request, arrival: Instant) -> (u16, String) {
        match request.path.as_str() {
            "/plan" => self.answer_plan(request, arrival),
            "/lookup" => self.answer_lookup(request),
            other => error_response(404, "unknown_path", &format!("no route for {other}")),
        }
    }

    /// `/lookup?surface=<spec>/<metric>&<axis>=<value>...` — raw
    /// surrogate surface evaluation.
    fn answer_lookup(&self, request: &Request) -> (u16, String) {
        let Some(name) = request.param("surface") else {
            return error_response(400, "bad_request", "missing surface=<spec>/<metric>");
        };
        let Some(family) = self.index.get(name) else {
            return error_response(404, "unknown_surface", &format!("no surface '{name}'"));
        };
        // Categorical axes select the variant.
        let mut key: Vec<&str> = Vec::new();
        for axis in family.categorical_axes() {
            match request.param(axis) {
                Some(v) => key.push(v),
                None => {
                    return error_response(
                        400,
                        "bad_request",
                        &format!("missing categorical axis {axis}=<value>"),
                    )
                }
            }
        }
        let Some(surface) = family.surface(&key) else {
            return error_response(
                404,
                "unknown_variant",
                &format!("no variant {key:?} of '{name}'"),
            );
        };
        let mut query = Vec::with_capacity(surface.axes().len());
        for axis in surface.axes() {
            let Some(raw) = request.param(&axis.name) else {
                return error_response(
                    400,
                    "bad_request",
                    &format!("missing axis {}=<number>", axis.name),
                );
            };
            match raw.parse::<f64>() {
                Ok(v) if v.is_finite() => query.push(v),
                _ => {
                    return error_response(
                        400,
                        "bad_request",
                        &format!("axis {} wants a finite number, got '{raw}'", axis.name),
                    )
                }
            }
        }
        let hit = surface.eval(&query);
        let mut row = Row::new("planner_lookup")
            .str("surface", name)
            .num("value", hit.value)
            .int("degraded", i64::from(hit.clamped));
        for (axis, q) in surface.axes().iter().zip(&query) {
            row = row.num(&axis.name, *q);
        }
        self.stats.served.fetch_add(1, Ordering::Relaxed);
        if hit.clamped {
            self.stats.degraded.fetch_add(1, Ordering::Relaxed);
        }
        (200, jsonl(&row))
    }

    /// `/plan?logical_qubits=N&device_qubits=M[&exact=1]` — the advisor
    /// query, surrogate-first with guarded exact recomputation.
    fn answer_plan(&self, request: &Request, arrival: Instant) -> (u16, String) {
        let n = match positive_int_param(request, "logical_qubits") {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let dq = match positive_int_param(request, "device_qubits") {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let wants_exact = matches!(request.param("exact"), Some("1") | Some("true"));

        // Surrogate answer first: it is both the fast path and the
        // degraded fallback, so compute it unconditionally (a few
        // hundred nanoseconds per metric).
        let mut surrogate_best: Option<(&str, f64)> = None;
        let mut clamped = false;
        for metric in ADVISOR_METRICS {
            let Some(surface) = self
                .index
                .get(&format!("{ADVISOR_SPEC}/{metric}"))
                .and_then(|f| f.surface(&[]))
            else {
                return error_response(503, "not_ready", "advisor surfaces not loaded");
            };
            let hit = surface.eval(&[dq as f64, n as f64]);
            clamped |= hit.clamped;
            if surrogate_best.is_none() || hit.value > surrogate_best.unwrap().1 {
                surrogate_best = Some((metric, hit.value));
            }
        }
        let (surrogate_metric, surrogate_fidelity) =
            surrogate_best.expect("ADVISOR_METRICS is non-empty");

        let respond = |source: &str, strategy: &str, fidelity: f64, degraded: bool, cause: &str| {
            let mut row = Row::new("planner_plan")
                .int("logical_qubits", n)
                .int("device_qubits", dq)
                .str("strategy", strategy)
                .num("fidelity", fidelity)
                .str("source", source)
                .int("degraded", i64::from(degraded));
            if !cause.is_empty() {
                row = row.str("cause", cause);
            }
            self.stats.served.fetch_add(1, Ordering::Relaxed);
            if degraded {
                self.stats.degraded.fetch_add(1, Ordering::Relaxed);
            }
            (200, jsonl(&row))
        };
        let degrade = |cause: &str| {
            respond(
                "surface",
                metric_strategy(surrogate_metric),
                surrogate_fidelity,
                true,
                cause,
            )
        };

        if !wants_exact {
            // The pure surrogate answer: degraded only when the query
            // left the sampled region (nearest-surface extrapolation).
            return respond(
                "surface",
                metric_strategy(surrogate_metric),
                surrogate_fidelity,
                clamped,
                if clamped { "extrapolated" } else { "" },
            );
        }

        // Exact path: deadline check, then breaker, then guarded
        // compute. Every refusal degrades to the surrogate answer.
        let elapsed = arrival.elapsed();
        if self.cfg.deadline.saturating_sub(elapsed) < self.cfg.exact_budget {
            return degrade("deadline");
        }
        let now = Instant::now();
        if !self.breaker.lock().expect("breaker poisoned").allow(now) {
            return degrade("breaker_open");
        }

        let request_id = self.request_ids.fetch_add(1, Ordering::Relaxed) as usize;
        let fault = self
            .cfg
            .fault_plan
            .as_ref()
            .and_then(|p| p.fault_for(&self.chaos, request_id, 1));
        let deadline_secs = self.cfg.deadline.as_secs_f64();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(kind) = fault {
                inject(kind, request_id, Some(deadline_secs));
            }
            self.exact_cache.get_or_build((n, dq), || {
                plan(
                    &Workload::fche(n as usize, 1),
                    &DeviceModel::new(dq as usize, crate::index::ADVISOR_P_PHYS),
                )
            })
        }));
        let mut breaker = self.breaker.lock().expect("breaker poisoned");
        match outcome {
            Ok(exact_plan) if arrival.elapsed() <= self.cfg.deadline => {
                breaker.record_success();
                drop(breaker);
                self.stats.exact.fetch_add(1, Ordering::Relaxed);
                let best = exact_plan.best();
                respond(
                    "exact",
                    metric_strategy(strategy_metric(&best.strategy)),
                    best.fidelity,
                    false,
                    "",
                )
            }
            Ok(_) => {
                // Completed past the deadline (a stall): the result is
                // cached for the next query, but this response must not
                // pretend the latency was acceptable.
                breaker.record_failure(Instant::now());
                drop(breaker);
                self.stats.exact_failures.fetch_add(1, Ordering::Relaxed);
                degrade("exact_overrun")
            }
            Err(_) => {
                breaker.record_failure(Instant::now());
                drop(breaker);
                self.stats.exact_failures.fetch_add(1, Ordering::Relaxed);
                degrade("exact_failed")
            }
        }
    }

    /// `/healthz` — liveness plus the counters; always 200 while any
    /// stage is alive.
    fn health_row(&self) -> Row {
        let s = &self.stats;
        Row::new(HEALTH_LABEL)
            .str("status", if self.draining() { "draining" } else { "live" })
            .int("surfaces", self.index.len() as i64)
            .int("admitted", s.admitted.load(Ordering::Relaxed) as i64)
            .int("served", s.served.load(Ordering::Relaxed) as i64)
            .int("degraded", s.degraded.load(Ordering::Relaxed) as i64)
            .int("exact", s.exact.load(Ordering::Relaxed) as i64)
            .int(
                "exact_failures",
                s.exact_failures.load(Ordering::Relaxed) as i64,
            )
            .int("shed", s.shed.load(Ordering::Relaxed) as i64)
            .int("expired", s.expired.load(Ordering::Relaxed) as i64)
            .int(
                "breaker_trips",
                self.breaker.lock().expect("breaker poisoned").trips() as i64,
            )
    }
}

/// Starts the server and returns once the listener is bound.
///
/// # Errors
///
/// Returns a message when the listen address cannot be bound.
pub fn serve(index: SurfaceIndex, cfg: ServerConfig) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set nonblocking: {e}"))?;

    let drain = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let metrics = eftq_obs::Registry::new();
    let request_seconds = metrics.histogram("planner_request_seconds");
    let queue_depth = metrics.gauge("planner_queue_depth");
    let engine = Arc::new(Engine {
        chaos: SeedSequence::new(cfg.seed)
            .derive("planner")
            .derive("~chaos"),
        breaker: Mutex::new(CircuitBreaker::new(
            cfg.breaker_threshold,
            cfg.breaker_cooldown,
        )),
        exact_cache: ArtifactCache::new(),
        request_ids: AtomicU64::new(0),
        index,
        stats: Arc::clone(&stats),
        drain: Arc::clone(&drain),
        cfg,
        metrics,
        request_seconds,
        queue_depth,
    });

    // Accept stage → parse stage: bounded, stamped with arrival.
    let (conn_tx, conn_rx) = mpsc::sync_channel::<(TcpStream, Instant)>(engine.cfg.queue);
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    // Parse stage → evaluation stage: the admission queue proper.
    let (work_tx, work_rx) = mpsc::sync_channel::<Job>(engine.cfg.queue);
    let work_rx = Arc::new(Mutex::new(work_rx));

    let mut threads = Vec::new();

    // Acceptor.
    {
        let engine = Arc::clone(&engine);
        threads.push(std::thread::spawn(move || {
            loop {
                if engine.draining() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let arrival = Instant::now();
                        if let Err(mpsc::TrySendError::Full((mut stream, _))) =
                            conn_tx.try_send((stream, arrival))
                        {
                            // Parse stage saturated: immediate shed.
                            // Drain the (unread) request first — closing
                            // a socket with unread bytes RSTs and the
                            // peer would lose the 429 body.
                            engine.stats.shed.fetch_add(1, Ordering::Relaxed);
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                            let mut sink = [0u8; 1024];
                            use std::io::Read;
                            let _ = stream.read(&mut sink);
                            let (status, body) = error_response(429, "shed", "accept queue full");
                            engine.observe("-", status, arrival);
                            let _ = write_response(&mut stream, status, &body);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            // conn_tx drops here: parse threads drain the backlog and
            // exit, cascading the drain through the pipeline.
        }));
    }

    // Parse/route stage.
    for _ in 0..engine.cfg.parsers.max(1) {
        let engine = Arc::clone(&engine);
        let conn_rx = Arc::clone(&conn_rx);
        let work_tx = work_tx.clone();
        threads.push(std::thread::spawn(move || loop {
            let received = conn_rx.lock().expect("conn queue poisoned").recv();
            let Ok((mut stream, arrival)) = received else {
                break; // acceptor gone and backlog drained
            };
            // The read timeout bounds a slow-writing client by the
            // request deadline; a timeout surfaces as a read error.
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_read_timeout(Some(engine.cfg.deadline));
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(h) => h,
                Err(_) => continue,
            });
            let request = match read_request(&mut reader) {
                Ok(Some(r)) => r,
                Ok(None) => continue, // closed without a request
                Err(reason) => {
                    engine.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    let (status, body) = error_response(400, "bad_request", &reason);
                    engine.observe("-", status, arrival);
                    let _ = write_response(&mut stream, status, &body);
                    continue;
                }
            };
            let route = route_label(&request.path);
            match request.path.as_str() {
                // Health and metrics endpoints bypass admission
                // entirely: observability must answer while the
                // evaluation stage is saturated.
                "/healthz" => {
                    engine.stats.inline.fetch_add(1, Ordering::Relaxed);
                    engine.observe(route, 200, arrival);
                    let _ = write_response(&mut stream, 200, &jsonl(&engine.health_row()));
                }
                "/readyz" => {
                    engine.stats.inline.fetch_add(1, Ordering::Relaxed);
                    let (status, body) = if engine.draining() {
                        error_response(503, "draining", "server is draining")
                    } else if engine.index.is_empty() {
                        error_response(503, "not_ready", "surface index is empty")
                    } else {
                        (200, jsonl(&Row::new(HEALTH_LABEL).str("status", "ready")))
                    };
                    engine.observe(route, status, arrival);
                    let _ = write_response(&mut stream, status, &body);
                }
                "/surfaces" => {
                    engine.stats.inline.fetch_add(1, Ordering::Relaxed);
                    engine.observe(route, 200, arrival);
                    let body: String = engine
                        .index
                        .names()
                        .map(|n| jsonl(&Row::new("planner_surface").str("surface", n)))
                        .collect();
                    let _ = write_response(&mut stream, 200, &body);
                }
                "/metrics" => {
                    engine.stats.inline.fetch_add(1, Ordering::Relaxed);
                    // Count the scrape before rendering, so the body a
                    // scraper receives already includes its own request.
                    engine.observe(route, 200, arrival);
                    let body = engine.metrics_body();
                    let _ = write_response_with_type(&mut stream, 200, METRICS_CONTENT_TYPE, &body);
                }
                _ => {
                    let job = Job {
                        stream,
                        request,
                        arrival,
                    };
                    match work_tx.try_send(job) {
                        Ok(()) => {
                            engine.stats.admitted.fetch_add(1, Ordering::Relaxed);
                            engine.queue_depth.add(1);
                        }
                        Err(mpsc::TrySendError::Full(mut job)) => {
                            engine.stats.shed.fetch_add(1, Ordering::Relaxed);
                            let (status, body) =
                                error_response(429, "shed", "admission queue full");
                            engine.observe(route, status, arrival);
                            let _ = write_response(&mut job.stream, status, &body);
                        }
                        Err(mpsc::TrySendError::Disconnected(mut job)) => {
                            let (status, body) =
                                error_response(503, "draining", "evaluation stage stopped");
                            engine.observe(route, status, arrival);
                            let _ = write_response(&mut job.stream, status, &body);
                        }
                    }
                }
            }
        }));
    }
    drop(work_tx);

    // Evaluation stage.
    for _ in 0..engine.cfg.workers.max(1) {
        let engine = Arc::clone(&engine);
        let work_rx = Arc::clone(&work_rx);
        threads.push(std::thread::spawn(move || loop {
            let job = work_rx.lock().expect("work queue poisoned").recv();
            let Ok(mut job) = job else {
                break; // parse stage gone and queue drained
            };
            engine.queue_depth.add(-1);
            // An admitted request always gets a response — but one that
            // aged out in the queue gets the structured deadline error,
            // not a stale evaluation.
            let (status, body) = if job.arrival.elapsed() > engine.cfg.deadline {
                engine.stats.expired.fetch_add(1, Ordering::Relaxed);
                error_response(
                    504,
                    "deadline",
                    &format!(
                        "request spent {:.0?} in queue, deadline {:.0?}",
                        job.arrival.elapsed(),
                        engine.cfg.deadline
                    ),
                )
            } else {
                let answered = engine.answer(&job.request, job.arrival);
                if answered.0 == 400 || answered.0 == 404 {
                    engine.stats.rejected.fetch_add(1, Ordering::Relaxed);
                }
                answered
            };
            engine.observe(route_label(&job.request.path), status, job.arrival);
            let _ = write_response(&mut job.stream, status, &body);
        }));
    }

    Ok(ServerHandle {
        addr,
        drain,
        stats,
        threads,
    })
}

/// Serializes a row as one JSONL line.
fn jsonl(row: &Row) -> String {
    let mut line = row.to_json_row();
    line.push('\n');
    line
}

/// A structured error body: `(status, row)` with a machine-readable
/// cause.
fn error_response(status: u16, cause: &str, message: &str) -> (u16, String) {
    (
        status,
        jsonl(
            &Row::new(ERROR_LABEL)
                .int("status", i64::from(status))
                .str("cause", cause)
                .str("message", message),
        ),
    )
}

/// Parses a required positive integer query parameter.
fn positive_int_param(request: &Request, key: &str) -> Result<i64, (u16, String)> {
    let Some(raw) = request.param(key) else {
        return Err(error_response(
            400,
            "bad_request",
            &format!("missing {key}=<positive integer>"),
        ));
    };
    match raw.parse::<i64>() {
        Ok(v) if v > 0 => Ok(v),
        _ => Err(error_response(
            400,
            "bad_request",
            &format!("{key} wants a positive integer, got '{raw}'"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Write};

    fn test_index() -> SurfaceIndex {
        let mut index = SurfaceIndex::new();
        index.add_advisor_grid().unwrap();
        index
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            if line.trim_end().is_empty() {
                break;
            }
            line.clear();
        }
        let mut body = String::new();
        use std::io::Read;
        reader.read_to_string(&mut body).unwrap();
        (status, body)
    }

    #[test]
    fn serves_plan_lookup_health_and_drains() {
        let handle = serve(test_index(), ServerConfig::default()).unwrap();
        let addr = handle.addr();

        let (status, body) = get(addr, "/plan?logical_qubits=24&device_qubits=30000");
        assert_eq!(status, 200, "{body}");
        let row = eftq_sweep::jsonl::parse_row(body.trim()).unwrap();
        assert_eq!(row.label(), "planner_plan");
        assert_eq!(row.get_int("degraded"), Some(0));
        assert_eq!(row.get_str("source"), Some("surface"));
        assert!(row.get_num("fidelity").unwrap() > 0.0);

        // Off-grid queries degrade instead of failing.
        let (status, body) = get(addr, "/plan?logical_qubits=500&device_qubits=999999");
        assert_eq!(status, 200);
        let row = eftq_sweep::jsonl::parse_row(body.trim()).unwrap();
        assert_eq!(row.get_int("degraded"), Some(1));
        assert_eq!(row.get_str("cause"), Some("extrapolated"));

        // Exact recompute agrees with the library advisor.
        let (status, body) = get(addr, "/plan?logical_qubits=24&device_qubits=30000&exact=1");
        assert_eq!(status, 200);
        let row = eftq_sweep::jsonl::parse_row(body.trim()).unwrap();
        assert_eq!(row.get_str("source"), Some("exact"), "{body}");
        let exact = plan(
            &Workload::fche(24, 1),
            &DeviceModel::new(30_000, crate::index::ADVISOR_P_PHYS),
        );
        assert!((row.get_num("fidelity").unwrap() - exact.best().fidelity).abs() < 1e-12);

        let (status, body) = get(
            addr,
            "/lookup?surface=planner_advisor/f_nisq&device_qubits=10000&logical_qubits=12",
        );
        assert_eq!(status, 200, "{body}");

        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        let (status, _) = get(addr, "/readyz");
        assert_eq!(status, 200);
        let (status, body) = get(addr, "/lookup?surface=nope/nope");
        assert_eq!(status, 404, "{body}");
        let (status, _) = get(addr, "/plan?logical_qubits=-3&device_qubits=10");
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/wat");
        assert_eq!(status, 404);

        handle.drain();
    }

    #[test]
    fn metrics_endpoint_renders_prometheus_text() {
        let handle = serve(test_index(), ServerConfig::default()).unwrap();
        let addr = handle.addr();
        let _ = get(addr, "/plan?logical_qubits=24&device_qubits=30000");
        let _ = get(addr, "/plan?logical_qubits=-3&device_qubits=10");
        let _ = get(addr, "/healthz");

        // Raw request: the content type must be the text exposition
        // format, not JSONL.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        use std::io::Read;
        stream.read_to_string(&mut raw).unwrap();
        assert!(
            raw.contains("Content-Type: text/plain; version=0.0.4\r\n"),
            "{raw}"
        );
        let body = raw.split("\r\n\r\n").nth(1).unwrap();

        assert!(
            body.contains("# TYPE planner_requests_total counter"),
            "{body}"
        );
        assert!(
            body.contains(r#"planner_requests_total{route="/plan",status="200"} 1"#),
            "{body}"
        );
        assert!(
            body.contains(r#"planner_requests_total{route="/plan",status="400"} 1"#),
            "{body}"
        );
        assert!(
            body.contains(r#"planner_requests_total{route="/metrics",status="200"} 1"#),
            "the scrape counts itself: {body}"
        );
        for series in [
            "planner_request_seconds_bucket",
            "planner_request_seconds_sum",
            "planner_request_seconds_count",
            "planner_request_seconds_p50_seconds",
            "planner_request_seconds_p99_seconds",
            "planner_breaker_state 0",
            "planner_breaker_trips_total 0",
            "planner_queue_depth",
            "planner_surfaces_loaded",
            "planner_served_total",
            "planner_shed_total",
            "planner_deadline_total",
            "planner_degraded_total",
        ] {
            assert!(body.contains(series), "missing {series}: {body}");
        }
        // The latency histogram and the request counters agree: every
        // response was observed exactly once.
        let count: f64 = body
            .lines()
            .find(|l| l.starts_with("planner_request_seconds_count"))
            .and_then(|l| l.rsplit_once(' '))
            .unwrap()
            .1
            .parse()
            .unwrap();
        let by_route: f64 = body
            .lines()
            .filter(|l| l.starts_with("planner_requests_total{"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<f64>().unwrap())
            .sum();
        assert_eq!(count, by_route, "{body}");
        // Every non-comment line parses as `series value`.
        for line in body.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect(line);
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
        handle.drain();
    }

    #[test]
    fn drained_server_refuses_new_connections() {
        let handle = serve(test_index(), ServerConfig::default()).unwrap();
        let addr = handle.addr();
        handle.drain();
        // The listener is gone: connecting now fails (or is refused
        // with a reset before any response).
        let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
        match refused {
            Err(_) => {}
            Ok(mut s) => {
                let _ = write!(s, "GET /healthz HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                use std::io::Read;
                let _ = s.read_to_string(&mut out);
                assert!(out.is_empty(), "drained server answered: {out}");
            }
        }
    }
}
