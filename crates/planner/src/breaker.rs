//! A circuit breaker for the exact-compute path.
//!
//! Exact recomputation is the planner's slow dependency: it can panic
//! (chaos faults, model bugs) or stall. The breaker watches consecutive
//! failures and, once tripped, short-circuits further exact attempts to
//! the degraded surrogate path until a cooldown passes — then lets one
//! probe through (half-open) and re-opens or closes on its outcome.
//!
//! The state machine is pure over an explicit `now` instant, so tests
//! drive it with a manual clock instead of sleeping.

use std::time::{Duration, Instant};

/// Breaker state (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Healthy: counting consecutive failures.
    Closed { failures: u32 },
    /// Tripped: reject exact attempts until the cooldown instant.
    Open { until: Instant },
    /// Cooldown elapsed: exactly one probe is in flight.
    HalfOpen,
}

/// A consecutive-failure circuit breaker with a manual clock.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: State,
    /// Total trips (exposed for health reporting).
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and cooling down for `cooldown`.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is 0 (the breaker could never close).
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        assert!(threshold > 0, "breaker threshold must be at least 1");
        CircuitBreaker {
            threshold,
            cooldown,
            state: State::Closed { failures: 0 },
            trips: 0,
        }
    }

    /// Whether an exact attempt may proceed at `now`. Transitions
    /// `Open → HalfOpen` when the cooldown has elapsed (the caller that
    /// receives `true` in half-open state is the probe).
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            State::Closed { .. } => true,
            State::Open { until } if now >= until => {
                self.state = State::HalfOpen;
                true
            }
            State::Open { .. } => false,
            // One probe at a time: others stay degraded until it lands.
            State::HalfOpen => false,
        }
    }

    /// Records a successful exact computation: closes the breaker.
    pub fn record_success(&mut self) {
        self.state = State::Closed { failures: 0 };
    }

    /// Records a failed exact computation at `now`: trips the breaker
    /// when the consecutive-failure threshold is reached, and re-opens
    /// immediately from a failed half-open probe.
    pub fn record_failure(&mut self, now: Instant) {
        match self.state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.threshold {
                    self.state = State::Open {
                        until: now + self.cooldown,
                    };
                    self.trips += 1;
                } else {
                    self.state = State::Closed { failures };
                }
            }
            State::HalfOpen => {
                self.state = State::Open {
                    until: now + self.cooldown,
                };
                self.trips += 1;
            }
            State::Open { .. } => {}
        }
    }

    /// Whether the breaker currently rejects exact attempts at `now`.
    pub fn is_open(&self, now: Instant) -> bool {
        matches!(self.state, State::Open { until } if now < until) || self.state == State::HalfOpen
    }

    /// Times the breaker has tripped since construction.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// The state as a numeric gauge for metrics exposition: 0 closed,
    /// 1 open, 2 half-open. An open breaker whose cooldown has elapsed
    /// reports half-open — the next [`CircuitBreaker::allow`] call
    /// becomes the probe, so that is the state a scrape should see.
    pub fn state_code(&self, now: Instant) -> i64 {
        match self.state {
            State::Closed { .. } => 0,
            State::Open { until } if now < until => 1,
            State::Open { .. } | State::HalfOpen => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_recovers_via_probe() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(3, Duration::from_secs(10));
        for _ in 0..2 {
            assert!(b.allow(t0));
            b.record_failure(t0);
        }
        assert!(b.allow(t0), "below threshold stays closed");
        b.record_failure(t0);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(t0), "tripped");
        assert!(!b.allow(t0 + Duration::from_secs(9)));

        // Cooldown elapsed: exactly one probe allowed.
        let t1 = t0 + Duration::from_secs(10);
        assert!(b.allow(t1), "probe");
        assert!(!b.allow(t1), "second caller waits for the probe");
        b.record_success();
        assert!(b.allow(t1), "closed again");
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(1, Duration::from_secs(5));
        b.record_failure(t0);
        let t1 = t0 + Duration::from_secs(5);
        assert!(b.allow(t1), "probe");
        b.record_failure(t1);
        assert_eq!(b.trips(), 2);
        assert!(!b.allow(t1 + Duration::from_secs(4)));
        assert!(b.allow(t1 + Duration::from_secs(5)));
    }

    #[test]
    fn state_codes_track_the_lifecycle() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(1, Duration::from_secs(5));
        assert_eq!(b.state_code(t0), 0, "closed");
        b.record_failure(t0);
        assert_eq!(b.state_code(t0), 1, "open");
        let t1 = t0 + Duration::from_secs(5);
        assert_eq!(b.state_code(t1), 2, "cooldown elapsed: half-open");
        assert!(b.allow(t1), "probe");
        assert_eq!(b.state_code(t1), 2, "probe in flight");
        b.record_success();
        assert_eq!(b.state_code(t1), 0, "closed again");
    }

    #[test]
    fn successes_reset_the_consecutive_count() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(2, Duration::from_secs(1));
        b.record_failure(t0);
        b.record_success();
        b.record_failure(t0);
        assert!(b.allow(t0), "non-consecutive failures never trip");
        assert_eq!(b.trips(), 0);
    }
}
