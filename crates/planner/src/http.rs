//! A deliberately minimal HTTP/1.1 layer for the planner service.
//!
//! The server speaks exactly what its clients (curl, CI scripts, the
//! soak test) need: one request per connection (`Connection: close`),
//! GET targets with query strings, JSONL response bodies. Keeping the
//! parser ~100 lines means the robustness story lives in the server's
//! admission control, not in a protocol stack; anything outside this
//! subset gets a structured 400, never a hang (reads sit behind the
//! caller's socket timeout).

use std::io::{BufRead, Write};

/// A parsed request line + headers (bodies are not consumed: every
/// planner endpoint is a GET).
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`).
    pub method: String,
    /// Path component of the target (before `?`).
    pub path: String,
    /// Decoded `key=value` query parameters, in order.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// The first value of query parameter `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads and parses one request from `reader` (request line + headers;
/// stops at the blank line).
///
/// # Errors
///
/// `Ok(None)` for a cleanly closed idle connection; `Err` with a
/// human-readable reason for anything malformed (the caller answers
/// 400) or an IO/timeout failure.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(format!("read failed: {e}")),
    }
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => return Err(format!("malformed request line: {line:?}")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    // Drain headers up to the blank line; cap their count so a
    // malicious peer cannot stream headers forever.
    for _ in 0..64 {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err("connection closed mid-headers".into()),
            Ok(_) if header.trim_end().is_empty() => {
                let (path, query) = split_target(target);
                return Ok(Some(Request {
                    method: method.to_string(),
                    path,
                    query,
                }));
            }
            Ok(_) => {}
            Err(e) => return Err(format!("read failed mid-headers: {e}")),
        }
    }
    Err("too many headers".into())
}

/// Splits a request target into path and decoded query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), params)
}

/// Decodes `%XX` escapes and `+` (space); malformed escapes pass
/// through verbatim (they will fail parameter validation downstream).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The `Content-Type` of `/metrics` responses (Prometheus text
/// exposition format).
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Writes a complete `Connection: close` response with a JSONL body.
///
/// # Errors
///
/// Propagates socket write failures (the caller drops the connection).
pub fn write_response<W: Write>(stream: &mut W, status: u16, body: &str) -> std::io::Result<()> {
    write_response_with_type(stream, status, "application/jsonl", body)
}

/// Writes a complete `Connection: close` response with an explicit
/// content type (the `/metrics` endpoint is text, everything else
/// JSONL).
///
/// # Errors
///
/// Propagates socket write failures (the caller drops the connection).
pub fn write_response_with_type<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Status",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {body}",
        body.len(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, String> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_target_query_and_headers() {
        let req = parse(
            "GET /plan?logical_qubits=24&device_qubits=30000&note=a+b%2Fc HTTP/1.1\r\n\
             Host: localhost\r\n\
             \r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/plan");
        assert_eq!(req.param("logical_qubits"), Some("24"));
        assert_eq!(req.param("device_qubits"), Some("30000"));
        assert_eq!(req.param("note"), Some("a b/c"));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn empty_connection_is_none_and_garbage_is_an_error() {
        assert!(parse("").unwrap().is_none());
        assert!(parse("not http\r\n\r\n").is_err());
        assert!(parse("GET /x SPDY/9\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\nunterminated").is_err());
    }

    #[test]
    fn responses_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "{\"row\":\"~planner-error\"}\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Type: application/jsonl\r\n"));
        assert!(text.contains("Content-Length: 25\r\n"));
        assert!(text.ends_with("{\"row\":\"~planner-error\"}\n"));

        let mut out = Vec::new();
        write_response_with_type(&mut out, 200, METRICS_CONTENT_TYPE, "x 1\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
    }
}
