//! Numerical foundations for the EFT-VQA reproduction.
//!
//! This crate deliberately avoids external linear-algebra dependencies: the
//! sanctioned dependency set for the reproduction does not include a complex
//! number or matrix crate, so the small amount of dense linear algebra the
//! project needs lives here.
//!
//! The crate provides:
//!
//! * [`Complex`] — a `f64` complex number with the full arithmetic surface
//!   used by the simulators.
//! * [`Mat2`] / [`Mat4`] — dense 2×2 and 4×4 complex matrices (single- and
//!   two-qubit operators) with multiplication, adjoints, tensor products and
//!   unitarity checks.
//! * [`lanczos()`] — a Lanczos ground-state eigensolver over a caller-supplied
//!   Hermitian matrix–vector product, used to obtain exact reference energies
//!   for the γ metric.
//! * [`stats`] — summary statistics and the geometric-distribution facts used
//!   by the paper's Section-9 patch-shuffling proof.
//! * [`rng`] — deterministic RNG plumbing (seed splitting) so every
//!   stochastic experiment in the workspace is reproducible.
//! * [`bernoulli`] — [`BernoulliWords`], the batched Bernoulli sampler
//!   (geometric skipping for sparse probabilities, bit-slice refinement
//!   for dense ones) behind the stabilizer noise engine.
//!
//! # Examples
//!
//! ```
//! use eftq_numerics::{Complex, Mat2};
//!
//! let h = Mat2::hadamard();
//! let id = h.mul(&h); // H is an involution
//! assert!(id.approx_eq(&Mat2::identity(), 1e-12));
//! assert_eq!(Complex::I * Complex::I, -Complex::ONE);
//! ```

#![deny(missing_docs)]

pub mod bernoulli;
pub mod complex;
pub mod lanczos;
pub mod mat;
pub mod rng;
pub mod stats;
pub mod words;

pub use bernoulli::BernoulliWords;
pub use complex::Complex;
pub use lanczos::{lanczos, LanczosError, LanczosOptions, LanczosResult};
pub use mat::{Mat2, Mat4};
pub use rng::{splitmix64, SeedSequence};
