//! A small, fast `f64` complex number.
//!
//! The sanctioned dependency set does not include `num-complex`, so the
//! workspace carries its own implementation. Only the operations the
//! simulators need are provided, but those are provided completely: ring
//! arithmetic with both `Complex` and `f64` operands, conjugation, modulus,
//! polar construction and the complex exponential.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + im·i` over `f64`.
///
/// # Examples
///
/// ```
/// use eftq_numerics::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm_sqr(), 25.0);
/// assert_eq!(z.conj(), Complex::new(3.0, -4.0));
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a real complex number (imaginary part zero).
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the number `r·e^{iθ}` from polar coordinates.
    ///
    /// # Examples
    ///
    /// ```
    /// use eftq_numerics::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, the unit phase with argument `theta`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`. Cheaper than [`Complex::abs`]; prefer it in
    /// normalization loops.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Returns `i^k` for `k` taken modulo 4; the phase group tracked by
    /// Pauli-string multiplication.
    #[inline]
    pub fn i_pow(k: u8) -> Self {
        match k % 4 {
            0 => Complex::ONE,
            1 => Complex::I,
            2 => -Complex::ONE,
            _ => -Complex::I,
        }
    }

    /// Whether both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within absolute tolerance `tol` on both parts.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Complex({}{:+}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via the reciprocal is the intended formula, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex::new(1.0, 2.0).re, 1.0);
        assert_eq!(Complex::new(1.0, 2.0).im, 2.0);
        assert_eq!(Complex::real(3.0), Complex::new(3.0, 0.0));
        assert_eq!(Complex::from(4.0), Complex::new(4.0, 0.0));
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
    }

    #[test]
    fn ring_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        // (1+2i)(-3+0.5i) = -3 + 0.5i - 6i + i² = -4 - 5.5i
        assert!((a * b).approx_eq(Complex::new(-4.0, -5.5), TOL));
        assert!((a * b / b).approx_eq(a, TOL));
    }

    #[test]
    fn division_by_self_is_one() {
        let z = Complex::new(0.3, -0.7);
        assert!((z / z).approx_eq(Complex::ONE, TOL));
        assert!((z * z.recip()).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), TOL));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::new(-1.5, 2.5);
        let back = Complex::from_polar(z.abs(), z.arg());
        assert!(back.approx_eq(z, 1e-10));
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let theta = k as f64 * 0.4321;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < TOL);
            assert!(
                (z.arg() - theta.rem_euclid(2.0 * std::f64::consts::PI))
                    .abs()
                    .min(
                        (z.arg() + 2.0 * std::f64::consts::PI
                            - theta.rem_euclid(2.0 * std::f64::consts::PI))
                        .abs()
                    )
                    < 1e-9
            );
        }
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex::new(0.5, std::f64::consts::FRAC_PI_3);
        let e = z.exp();
        let want = Complex::from_polar(0.5f64.exp(), std::f64::consts::FRAC_PI_3);
        assert!(e.approx_eq(want, TOL));
    }

    #[test]
    fn i_pow_cycles_with_period_four() {
        assert_eq!(Complex::i_pow(0), Complex::ONE);
        assert_eq!(Complex::i_pow(1), Complex::I);
        assert_eq!(Complex::i_pow(2), -Complex::ONE);
        assert_eq!(Complex::i_pow(3), -Complex::I);
        assert_eq!(Complex::i_pow(7), Complex::i_pow(3));
    }

    #[test]
    fn assign_operators() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::ONE;
        assert_eq!(z, Complex::new(2.0, 1.0));
        z -= Complex::I;
        assert_eq!(z, Complex::new(2.0, 0.0));
        z *= Complex::I;
        assert!(z.approx_eq(Complex::new(0.0, 2.0), TOL));
        z /= Complex::new(0.0, 2.0);
        assert!(z.approx_eq(Complex::ONE, TOL));
        z *= 3.0;
        assert!(z.approx_eq(Complex::real(3.0), TOL));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex = (0..4).map(|k| Complex::i_pow(k as u8)).sum();
        // 1 + i - 1 - i = 0
        assert!(total.approx_eq(Complex::ZERO, TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(format!("{:?}", Complex::new(0.0, 1.0)), "Complex(0+1i)");
    }

    #[test]
    fn mixed_real_arithmetic() {
        let z = Complex::new(1.0, 1.0);
        assert_eq!(z + 1.0, Complex::new(2.0, 1.0));
        assert_eq!(z - 1.0, Complex::new(0.0, 1.0));
        assert_eq!(z * 2.0, Complex::new(2.0, 2.0));
        assert_eq!(z / 2.0, Complex::new(0.5, 0.5));
        assert_eq!(2.0 * z, Complex::new(2.0, 2.0));
    }
}
