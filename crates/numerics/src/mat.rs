//! Small dense complex matrices: single-qubit (2×2) and two-qubit (4×4)
//! operators, plus the standard gate matrices used across the workspace.

use crate::complex::Complex;
use std::f64::consts::FRAC_1_SQRT_2;

/// A 2×2 complex matrix in row-major order, used for single-qubit operators.
///
/// # Examples
///
/// ```
/// use eftq_numerics::Mat2;
///
/// let s = Mat2::s_gate();
/// let z = s.mul(&s); // S² = Z
/// assert!(z.approx_eq(&Mat2::pauli_z(), 1e-12));
/// assert!(s.is_unitary(1e-12));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Mat2 {
    /// Row-major entries `[m00, m01, m10, m11]`.
    pub m: [Complex; 4],
}

impl Mat2 {
    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(m: [Complex; 4]) -> Self {
        Mat2 { m }
    }

    /// The 2×2 identity.
    pub fn identity() -> Self {
        Mat2::new([Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ONE])
    }

    /// The zero matrix.
    pub fn zero() -> Self {
        Mat2::new([Complex::ZERO; 4])
    }

    /// Pauli X.
    pub fn pauli_x() -> Self {
        Mat2::new([Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO])
    }

    /// Pauli Y.
    pub fn pauli_y() -> Self {
        Mat2::new([Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO])
    }

    /// Pauli Z.
    pub fn pauli_z() -> Self {
        Mat2::new([Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::ONE])
    }

    /// Hadamard gate.
    pub fn hadamard() -> Self {
        let h = Complex::real(FRAC_1_SQRT_2);
        Mat2::new([h, h, h, -h])
    }

    /// Phase gate `S = diag(1, i)`.
    pub fn s_gate() -> Self {
        Mat2::new([Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::I])
    }

    /// Inverse phase gate `S† = diag(1, -i)`.
    pub fn sdg_gate() -> Self {
        Mat2::new([Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::I])
    }

    /// T gate `diag(1, e^{iπ/4})`.
    pub fn t_gate() -> Self {
        Mat2::new([
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::cis(std::f64::consts::FRAC_PI_4),
        ])
    }

    /// `Rz(θ) = diag(e^{-iθ/2}, e^{iθ/2})`.
    pub fn rz(theta: f64) -> Self {
        Mat2::new([
            Complex::cis(-theta / 2.0),
            Complex::ZERO,
            Complex::ZERO,
            Complex::cis(theta / 2.0),
        ])
    }

    /// `Rx(θ) = cos(θ/2)·I − i·sin(θ/2)·X`.
    pub fn rx(theta: f64) -> Self {
        let c = Complex::real((theta / 2.0).cos());
        let s = -Complex::I * (theta / 2.0).sin();
        Mat2::new([c, s, s, c])
    }

    /// `Ry(θ) = cos(θ/2)·I − i·sin(θ/2)·Y`.
    pub fn ry(theta: f64) -> Self {
        let c = Complex::real((theta / 2.0).cos());
        let s = (theta / 2.0).sin();
        Mat2::new([c, Complex::real(-s), Complex::real(s), c])
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Mat2) -> Mat2 {
        let a = &self.m;
        let b = &rhs.m;
        Mat2::new([
            a[0] * b[0] + a[1] * b[2],
            a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2],
            a[2] * b[1] + a[3] * b[3],
        ])
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat2 {
        let a = &self.m;
        Mat2::new([a[0].conj(), a[2].conj(), a[1].conj(), a[3].conj()])
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex) -> Mat2 {
        let mut out = *self;
        for e in &mut out.m {
            *e *= k;
        }
        out
    }

    /// Entry-wise sum.
    pub fn add(&self, rhs: &Mat2) -> Mat2 {
        let mut out = *self;
        for (e, r) in out.m.iter_mut().zip(rhs.m.iter()) {
            *e += *r;
        }
        out
    }

    /// Applies the matrix to a 2-vector `(v0, v1)`.
    #[inline]
    pub fn apply(&self, v0: Complex, v1: Complex) -> (Complex, Complex) {
        (
            self.m[0] * v0 + self.m[1] * v1,
            self.m[2] * v0 + self.m[3] * v1,
        )
    }

    /// Kronecker product `self ⊗ rhs`, giving the 4×4 operator that acts with
    /// `self` on the *high* (most-significant) qubit and `rhs` on the low one.
    pub fn kron(&self, rhs: &Mat2) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        out.m[(2 * i + k) * 4 + (2 * j + l)] = self.m[i * 2 + j] * rhs.m[k * 2 + l];
                    }
                }
            }
        }
        out
    }

    /// Trace.
    pub fn trace(&self) -> Complex {
        self.m[0] + self.m[3]
    }

    /// Whether `U†U ≈ I` within absolute tolerance `tol` per entry.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.adjoint().mul(self).approx_eq(&Mat2::identity(), tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, rhs: &Mat2, tol: f64) -> bool {
        self.m
            .iter()
            .zip(rhs.m.iter())
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Operator distance `max_ij |a_ij - b_ij|`; a cheap proxy for the
    /// diamond-norm distances used when validating synthesized gate
    /// sequences.
    pub fn max_entry_distance(&self, rhs: &Mat2) -> f64 {
        self.m
            .iter()
            .zip(rhs.m.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Distance to `rhs` up to a global phase: minimizes the max-entry
    /// distance over a phase chosen from the largest entry alignment.
    pub fn phase_invariant_distance(&self, rhs: &Mat2) -> f64 {
        // Pick the entry of `rhs` with largest modulus, align phases there.
        let (idx, _) = rhs
            .m
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.norm_sqr().partial_cmp(&b.norm_sqr()).unwrap())
            .expect("2x2 matrix is non-empty");
        if rhs.m[idx].abs() < 1e-15 || self.m[idx].abs() < 1e-15 {
            return self.max_entry_distance(rhs);
        }
        let phase = rhs.m[idx] / self.m[idx];
        let phase = phase / phase.abs();
        self.scale(phase).max_entry_distance(rhs)
    }
}

/// A 4×4 complex matrix in row-major order, used for two-qubit operators.
///
/// Basis ordering is `|q_high q_low⟩` with the high qubit contributed by the
/// left factor of [`Mat2::kron`].
#[derive(Clone, Debug, PartialEq)]
pub struct Mat4 {
    /// Row-major entries.
    pub m: [Complex; 16],
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::identity()
    }
}

impl Mat4 {
    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(m: [Complex; 16]) -> Self {
        Mat4 { m }
    }

    /// The zero matrix.
    pub fn zero() -> Self {
        Mat4::new([Complex::ZERO; 16])
    }

    /// The 4×4 identity.
    pub fn identity() -> Self {
        let mut out = Mat4::zero();
        for i in 0..4 {
            out.m[i * 4 + i] = Complex::ONE;
        }
        out
    }

    /// CNOT with the *high* qubit as control and the low qubit as target
    /// (basis `|control target⟩`).
    pub fn cnot() -> Self {
        let mut out = Mat4::zero();
        let map = [0usize, 1, 3, 2];
        for (col, &row) in map.iter().enumerate() {
            out.m[row * 4 + col] = Complex::ONE;
        }
        out
    }

    /// Controlled-Z (symmetric in its qubits).
    pub fn cz() -> Self {
        let mut out = Mat4::identity();
        out.m[15] = -Complex::ONE;
        out
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for k in 0..4 {
                let a = self.m[i * 4 + k];
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..4 {
                    out.m[i * 4 + j] += a * rhs.m[k * 4 + j];
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                out.m[j * 4 + i] = self.m[i * 4 + j].conj();
            }
        }
        out
    }

    /// Applies the matrix to a 4-vector.
    pub fn apply(&self, v: [Complex; 4]) -> [Complex; 4] {
        let mut out = [Complex::ZERO; 4];
        for (i, o) in out.iter_mut().enumerate() {
            for (j, vj) in v.iter().enumerate() {
                *o += self.m[i * 4 + j] * *vj;
            }
        }
        out
    }

    /// Trace.
    pub fn trace(&self) -> Complex {
        (0..4).map(|i| self.m[i * 4 + i]).sum()
    }

    /// Whether `U†U ≈ I` within tolerance `tol` per entry.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.adjoint().mul(self).approx_eq(&Mat4::identity(), tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, rhs: &Mat4, tol: f64) -> bool {
        self.m
            .iter()
            .zip(rhs.m.iter())
            .all(|(a, b)| a.approx_eq(*b, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn paulis_square_to_identity() {
        for p in [Mat2::pauli_x(), Mat2::pauli_y(), Mat2::pauli_z()] {
            assert!(p.mul(&p).approx_eq(&Mat2::identity(), TOL));
            assert!(p.is_unitary(TOL));
        }
    }

    #[test]
    fn pauli_algebra_xy_equals_iz() {
        let xy = Mat2::pauli_x().mul(&Mat2::pauli_y());
        let iz = Mat2::pauli_z().scale(Complex::I);
        assert!(xy.approx_eq(&iz, TOL));
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let h = Mat2::hadamard();
        let hxh = h.mul(&Mat2::pauli_x()).mul(&h);
        assert!(hxh.approx_eq(&Mat2::pauli_z(), TOL));
    }

    #[test]
    fn s_and_t_phase_relations() {
        // T² = S, S² = Z.
        let t2 = Mat2::t_gate().mul(&Mat2::t_gate());
        assert!(t2.approx_eq(&Mat2::s_gate(), TOL));
        let s2 = Mat2::s_gate().mul(&Mat2::s_gate());
        assert!(s2.approx_eq(&Mat2::pauli_z(), TOL));
        let ssdg = Mat2::s_gate().mul(&Mat2::sdg_gate());
        assert!(ssdg.approx_eq(&Mat2::identity(), TOL));
    }

    #[test]
    fn rotations_are_unitary_and_periodic() {
        for &theta in &[0.0, 0.3, 1.7, std::f64::consts::PI, 5.9] {
            assert!(Mat2::rz(theta).is_unitary(TOL));
            assert!(Mat2::rx(theta).is_unitary(TOL));
            assert!(Mat2::ry(theta).is_unitary(TOL));
        }
        // Rz(2π) = -I (spinor periodicity).
        let full = Mat2::rz(2.0 * std::f64::consts::PI);
        assert!(full.approx_eq(&Mat2::identity().scale(-Complex::ONE), 1e-9));
    }

    #[test]
    fn rz_pi_2_is_s_up_to_phase() {
        let rz = Mat2::rz(std::f64::consts::FRAC_PI_2);
        assert!(rz.phase_invariant_distance(&Mat2::s_gate()) < 1e-12);
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let rx = Mat2::rx(std::f64::consts::PI);
        assert!(rx.phase_invariant_distance(&Mat2::pauli_x()) < 1e-12);
    }

    #[test]
    fn mat2_apply_matches_mul() {
        let u = Mat2::hadamard().mul(&Mat2::s_gate());
        let (a, b) = u.apply(Complex::ONE, Complex::ZERO);
        assert!(a.approx_eq(u.m[0], TOL));
        assert!(b.approx_eq(u.m[2], TOL));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let zx = Mat2::pauli_z().kron(&Mat2::pauli_x());
        // ⟨00| Z⊗X |01⟩ = 1 (Z on |0⟩ → +, X flips low bit).
        assert!(zx.m[1].approx_eq(Complex::ONE, TOL));
        // ⟨10| Z⊗X |11⟩ = -1.
        assert!(zx.m[2 * 4 + 3].approx_eq(-Complex::ONE, TOL));
        assert!(zx.is_unitary(TOL));
    }

    #[test]
    fn cnot_truth_table() {
        let cx = Mat4::cnot();
        // |10⟩ → |11⟩ : column 2 has a 1 at row 3.
        assert!(cx.m[3 * 4 + 2].approx_eq(Complex::ONE, TOL));
        // |00⟩ fixed.
        assert!(cx.m[0].approx_eq(Complex::ONE, TOL));
        assert!(cx.is_unitary(TOL));
        assert!(cx.mul(&cx).approx_eq(&Mat4::identity(), TOL));
    }

    #[test]
    fn cz_is_symmetric_and_diagonal() {
        let cz = Mat4::cz();
        assert!(cz.m[15].approx_eq(-Complex::ONE, TOL));
        assert!(cz.mul(&cz).approx_eq(&Mat4::identity(), TOL));
    }

    #[test]
    fn cnot_from_h_cz_h() {
        // CX = (I⊗H) CZ (I⊗H) for control = high qubit.
        let ih = Mat2::identity().kron(&Mat2::hadamard());
        let built = ih.mul(&Mat4::cz()).mul(&ih);
        assert!(built.approx_eq(&Mat4::cnot(), TOL));
    }

    #[test]
    fn mat4_trace_and_apply() {
        assert!(Mat4::identity().trace().approx_eq(Complex::real(4.0), TOL));
        let v = Mat4::cnot().apply([Complex::ZERO, Complex::ZERO, Complex::ONE, Complex::ZERO]);
        assert!(v[3].approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn phase_invariant_distance_ignores_global_phase() {
        let u = Mat2::rz(0.7);
        let v = u.scale(Complex::cis(1.2345));
        assert!(u.phase_invariant_distance(&v) < 1e-12);
        assert!(u.max_entry_distance(&v) > 0.1);
    }
}
