//! Lane-chunked `u64` word kernels shared by the bit-plane simulators.
//!
//! The stabilizer tableau and the Pauli-frame engine spend their inner
//! loops XOR-ing and swapping short `u64` slices (bit-columns of a
//! tableau, shot lanes of a frame batch). These helpers centralize those
//! loops so a single compilation switch widens them: with the
//! `wide-words` cargo feature enabled the kernels walk the slices in
//! [`LANES`]`= 4` word chunks (256 bits), a shape LLVM reliably
//! auto-vectorizes into AVX2/NEON lane operations; without the feature
//! they degrade to plain word-at-a-time loops.
//!
//! The chunking is *purely* a traversal change — every kernel performs
//! the same elementwise XOR/copy/swap regardless of lane width, so
//! results are bit-identical with the feature on or off (the
//! `wide-words` golden-hash suite in the stabilizer crate pins this).
//! RNG-driven loops must **not** move here: draw order is part of the
//! reproducibility contract, and these kernels never touch an RNG.

// `n % LANES` is trivially 0 when the feature is off (LANES = 1); the
// expression must stay written against the constant so the same source
// compiles at both widths.
#![allow(clippy::modulo_one)]

/// Words processed per chunk: 4 (256-bit lanes) under `wide-words`,
/// 1 otherwise.
pub const LANES: usize = if cfg!(feature = "wide-words") { 4 } else { 1 };

/// `dst[i] ^= src[i]` over the common prefix of the two slices.
#[inline]
pub fn xor_into(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dc, dr) = dst[..n].split_at_mut(n - n % LANES);
    let (sc, sr) = src[..n].split_at(n - n % LANES);
    for (d4, s4) in dc.chunks_exact_mut(LANES).zip(sc.chunks_exact(LANES)) {
        for (d, &s) in d4.iter_mut().zip(s4) {
            *d ^= s;
        }
    }
    for (d, &s) in dr.iter_mut().zip(sr) {
        *d ^= s;
    }
}

/// `dst[i] ^= a[i] & b[i]` over the common prefix of the three slices —
/// the sign-update shape of the tableau's S/CZ kernels.
#[inline]
pub fn xor_and_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
    let n = dst.len().min(a.len()).min(b.len());
    let (dc, dr) = dst[..n].split_at_mut(n - n % LANES);
    for (i, d4) in dc.chunks_exact_mut(LANES).enumerate() {
        let base = i * LANES;
        for (j, d) in d4.iter_mut().enumerate() {
            *d ^= a[base + j] & b[base + j];
        }
    }
    let base = n - n % LANES;
    for (j, d) in dr.iter_mut().enumerate() {
        *d ^= a[base + j] & b[base + j];
    }
}

/// Hadamard column kernel: `sgn ^= x & z`, then exchange `x` and `z`.
#[inline]
pub fn hadamard(x: &mut [u64], z: &mut [u64], sgn: &mut [u64]) {
    let n = x.len().min(z.len()).min(sgn.len());
    for w in 0..n {
        let (xv, zv) = (x[w], z[w]);
        sgn[w] ^= xv & zv;
        x[w] = zv;
        z[w] = xv;
    }
}

/// Phase-gate (S) column kernel: `sgn ^= x & z`, then `z ^= x`.
#[inline]
pub fn phase_s(x: &[u64], z: &mut [u64], sgn: &mut [u64]) {
    let n = x.len().min(z.len()).min(sgn.len());
    for w in 0..n {
        let xv = x[w];
        sgn[w] ^= xv & z[w];
        z[w] ^= xv;
    }
}

/// Inverse-phase-gate (S†) column kernel: `sgn ^= x & !z`, then
/// `z ^= x`.
#[inline]
pub fn phase_sdg(x: &[u64], z: &mut [u64], sgn: &mut [u64]) {
    let n = x.len().min(z.len()).min(sgn.len());
    for w in 0..n {
        let xv = x[w];
        sgn[w] ^= xv & !z[w];
        z[w] ^= xv;
    }
}

/// CX column kernel over a control column pair (`xc`, `zc`) and a
/// target pair (`xt`, `zt`): `sgn ^= xc & zt & !(xt ^ zc)`, then
/// `xt ^= xc` and `zc ^= zt`.
#[inline]
pub fn cx(xc: &[u64], zc: &mut [u64], xt: &mut [u64], zt: &[u64], sgn: &mut [u64]) {
    let n = xc
        .len()
        .min(zc.len())
        .min(xt.len())
        .min(zt.len())
        .min(sgn.len());
    for w in 0..n {
        let (xcv, ztv) = (xc[w], zt[w]);
        sgn[w] ^= xcv & ztv & !(xt[w] ^ zc[w]);
        xt[w] ^= xcv;
        zc[w] ^= ztv;
    }
}

/// CZ column kernel: `sgn ^= xa & xb & (za ^ zb)`, then `za ^= xb` and
/// `zb ^= xa`.
#[inline]
pub fn cz(xa: &[u64], xb: &[u64], za: &mut [u64], zb: &mut [u64], sgn: &mut [u64]) {
    let n = xa
        .len()
        .min(xb.len())
        .min(za.len())
        .min(zb.len())
        .min(sgn.len());
    for w in 0..n {
        let (xav, xbv) = (xa[w], xb[w]);
        sgn[w] ^= xav & xbv & (za[w] ^ zb[w]);
        za[w] ^= xbv;
        zb[w] ^= xav;
    }
}

/// Exchanges the contents of two equal-length slices.
#[inline]
pub fn swap(a: &mut [u64], b: &mut [u64]) {
    let n = a.len().min(b.len());
    let (ac, ar) = a[..n].split_at_mut(n - n % LANES);
    let (bc, br) = b[..n].split_at_mut(n - n % LANES);
    for (a4, b4) in ac.chunks_exact_mut(LANES).zip(bc.chunks_exact_mut(LANES)) {
        a4.swap_with_slice(b4);
    }
    ar.swap_with_slice(br);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_matches_scalar_loop() {
        for len in [0usize, 1, 3, 4, 5, 8, 11] {
            let mut dst: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
            let src: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x51_7cc1)).collect();
            let want: Vec<u64> = dst.iter().zip(&src).map(|(&d, &s)| d ^ s).collect();
            xor_into(&mut dst, &src);
            assert_eq!(dst, want, "len {len}");
        }
    }

    #[test]
    fn xor_and_into_matches_scalar_loop() {
        for len in [0usize, 1, 4, 6, 9] {
            let mut dst = vec![0xAAAA_5555u64; len];
            let a: Vec<u64> = (0..len as u64).map(|i| i | (i << 17)).collect();
            let b: Vec<u64> = (0..len as u64).map(|i| !i ^ (i << 3)).collect();
            let want: Vec<u64> = dst
                .iter()
                .zip(a.iter().zip(&b))
                .map(|(&d, (&x, &y))| d ^ (x & y))
                .collect();
            xor_and_into(&mut dst, &a, &b);
            assert_eq!(dst, want, "len {len}");
        }
    }

    #[test]
    fn swap_exchanges_contents() {
        for len in [0usize, 1, 4, 7] {
            let mut a: Vec<u64> = (0..len as u64).collect();
            let mut b: Vec<u64> = (100..100 + len as u64).collect();
            let (wa, wb) = (b.clone(), a.clone());
            swap(&mut a, &mut b);
            assert_eq!(a, wa, "len {len}");
            assert_eq!(b, wb, "len {len}");
        }
    }
}
