//! Bit-sliced batched Bernoulli sampling.
//!
//! Monte-Carlo noise injection asks the same question millions of times:
//! "does an error fire at this (site, shot) trial?" Answering with one
//! `rng.gen_bool(p)` per trial costs a full RNG draw *per shot per site*.
//! [`BernoulliWords`] answers 64 trials per machine word in `O(words)`
//! amortized, with two regimes chosen automatically from `p`:
//!
//! * **Geometric skipping** (sparse `p`): successive hits in an infinite
//!   Bernoulli(`p`) trial stream are separated by geometric gaps, so the
//!   sampler draws `gap = ⌊ln(u)/ln(1−p)⌋` and jumps straight to the next
//!   hit. The cursor persists across calls, so a *program* of many sites
//!   sharing one probability consumes the flat `(site × shot)` bit-grid
//!   with one logarithm per **hit**, not per site — cost `O(expected
//!   hits)` plus `O(1)` bookkeeping per site.
//! * **Bit-slice refinement** (dense `p`): write `p ≈ 0.b₁b₂…b₃₂` in
//!   binary and fold uniform random words from the least-significant
//!   slice upward — `r = rand | r` where `bᵢ = 1`, `r = rand & r` where
//!   `bᵢ = 0` — which leaves every lane set with probability `p` to
//!   within `2⁻³²`, branch-free and word-parallel.
//!
//! Determinism: the sampler is a pure function of its RNG stream, so
//! callers that derive one RNG per fixed-size batch (e.g. via
//! [`crate::SeedSequence::derive_index`]) get results that are
//! bit-identical for a fixed seed and independent of how batches are
//! scheduled across threads.

use rand::Rng;

/// Trials per output word.
const WORD_BITS: usize = 64;

/// Resolution of the bit-slice approximation: `p` is quantized to a
/// multiple of `2⁻³²`.
const SLICE_BITS: u32 = 32;

/// Probability below which geometric skipping beats slice composition.
/// A slice word costs up to 32 RNG draws; a geometric hit costs one draw
/// plus a logarithm, and a *miss* costs nothing — so sparse sites want
/// skipping and dense sites want slices. The crossover sits near
/// `64·p · c_hit ≈ 32 · c_draw`.
const GEOMETRIC_THRESHOLD: f64 = 0.05;

#[derive(Clone, Debug, PartialEq)]
enum Mode {
    /// `p ≤ 0`: no trial ever fires.
    Never,
    /// `p ≥ 1` (after quantization): every trial fires.
    Always,
    /// Sparse: skip geometric gaps through the flat trial stream.
    /// `gap` is the number of future misses before the next hit
    /// (`None` until the first draw).
    Geometric { ln_q: f64, gap: Option<u64> },
    /// Dense: compose `popcount + zeros` random words per output word.
    /// `pattern / 2³²` approximates `p`; bit 31 carries weight `1/2`.
    Slice { pattern: u32 },
}

/// A batched Bernoulli(`p`) sampler producing 64 independent trials per
/// `u64` (bit `i` set ⇔ trial `i` fired). See the module docs for the
/// geometric-skip / bit-slice split and the seeding discipline.
///
/// # Examples
///
/// ```
/// use eftq_numerics::BernoulliWords;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut sampler = BernoulliWords::new(0.25);
/// let mut mask = [0u64; 16];
/// sampler.fill_mask(&mut mask, 1024, &mut rng);
/// let hits: u32 = mask.iter().map(|w| w.count_ones()).sum();
/// // ~256 expected; loose 5σ band.
/// assert!((hits as f64 - 256.0).abs() < 5.0 * (1024.0f64 * 0.25 * 0.75).sqrt());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BernoulliWords {
    p: f64,
    mode: Mode,
}

impl BernoulliWords {
    /// Builds a sampler for success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let mode = if p <= 0.0 {
            Mode::Never
        } else if p < GEOMETRIC_THRESHOLD {
            Mode::Geometric {
                ln_q: (1.0 - p).ln(),
                gap: None,
            }
        } else {
            let pattern = (p * (1u64 << SLICE_BITS) as f64).round();
            if pattern >= 2f64.powi(SLICE_BITS as i32) {
                Mode::Always
            } else {
                Mode::Slice {
                    pattern: pattern as u32,
                }
            }
        };
        BernoulliWords { p, mode }
    }

    /// The success probability this sampler was built for.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Whether the sampler uses geometric skipping (sparse regime) rather
    /// than bit-slice composition.
    pub fn uses_geometric_skipping(&self) -> bool {
        matches!(self.mode, Mode::Geometric { .. })
    }

    /// Calls `f(i)` for every firing trial `i < span`, consuming exactly
    /// `span` trials from the sampler's stream (the geometric cursor
    /// carries any remaining gap into the next call).
    pub fn for_each_hit<R, F>(&mut self, span: usize, rng: &mut R, mut f: F)
    where
        R: Rng + ?Sized,
        F: FnMut(usize),
    {
        match self.mode {
            Mode::Never => {}
            Mode::Always => {
                for s in 0..span {
                    f(s);
                }
            }
            Mode::Geometric { ln_q, ref mut gap } => {
                let mut pos = gap.take().unwrap_or_else(|| geometric_gap(ln_q, rng));
                while pos < span as u64 {
                    f(pos as usize);
                    pos = pos
                        .saturating_add(1)
                        .saturating_add(geometric_gap(ln_q, rng));
                }
                *gap = Some(pos - span as u64);
            }
            Mode::Slice { pattern } => {
                let mut base = 0usize;
                while base < span {
                    let lanes = (span - base).min(WORD_BITS);
                    let mut w = slice_word(pattern, rng);
                    if lanes < WORD_BITS {
                        w &= (1u64 << lanes) - 1;
                    }
                    while w != 0 {
                        f(base + w.trailing_zeros() as usize);
                        w &= w - 1;
                    }
                    base += WORD_BITS;
                }
            }
        }
    }

    /// Clears `out` and fills it with `(word, lane-mask)` pairs describing
    /// every firing trial in `span`: pair `(w, m)` means the trials
    /// `64w + lane` fired for each set bit `lane` of `m`. Pairs are emitted
    /// in ascending word order and words with no hits are skipped, so a
    /// sparse sampler returns an *empty* list at `O(1)` cost instead of a
    /// zeroed mask the caller must scan.
    ///
    /// Consumes exactly the RNG draws [`BernoulliWords::fill_mask`] would
    /// for the same `span` — callers may mix the two representations
    /// within one stream without perturbing downstream draws. This is the
    /// sparse fast path of `eftq_stabilizer`'s compiled noise programs:
    /// at NISQ rates most injection sites have no hits in a 256-shot
    /// batch, and the hit-list form makes those sites cost cursor
    /// bookkeeping only.
    #[inline]
    pub fn hit_words<R: Rng + ?Sized>(
        &mut self,
        span: usize,
        rng: &mut R,
        out: &mut Vec<(u32, u64)>,
    ) {
        out.clear();
        // Hot path: the pending geometric gap already covers the whole
        // span, so no trial fires and no RNG draw is consumed — the
        // common case for a sparse site visiting a modest shot batch.
        if let Mode::Geometric { gap: Some(gap), .. } = &mut self.mode {
            if *gap >= span as u64 {
                *gap -= span as u64;
                return;
            }
        }
        self.for_each_hit(span, rng, |s| {
            let w = (s / WORD_BITS) as u32;
            let bit = 1u64 << (s % WORD_BITS);
            match out.last_mut() {
                Some(last) if last.0 == w => last.1 |= bit,
                _ => out.push((w, bit)),
            }
        });
    }

    /// Walks `count` consecutive *sites* of `span` trials each — one
    /// flat `count × span` stretch of the trial stream — and calls
    /// `flush(site, hits, rng)` for every site with at least one firing
    /// trial, where `hits` is the site's `(word, lane-mask)` list in
    /// [`BernoulliWords::hit_words`] format.
    ///
    /// Consumes **exactly** the RNG draws that `count` sequential
    /// [`BernoulliWords::hit_words`] calls would, and produces the same
    /// per-site hit lists in the same order — the two forms are
    /// interchangeable mid-stream. The payoff is the sparse fast path:
    /// a pending geometric gap covering the whole run retires all
    /// `count` sites with *one* comparison, instead of one cursor
    /// update per site. Compiled noise programs use this to fuse runs
    /// of same-class injection sites (a layer's idle qubits, a layer's
    /// two-qubit gates) into a single visit.
    ///
    /// `rng` is threaded through to `flush` so callers can draw
    /// per-site error letters *between* sites, exactly as they would
    /// in the sequential form (a site's letter draws happen after its
    /// last gap draw and before the next site's first).
    ///
    /// `buf` is caller-provided scratch (contents are ignored and
    /// clobbered).
    pub fn hit_site_runs<R, F>(
        &mut self,
        span: usize,
        count: usize,
        rng: &mut R,
        buf: &mut Vec<(u32, u64)>,
        mut flush: F,
    ) where
        R: Rng + ?Sized,
        F: FnMut(usize, &[(u32, u64)], &mut R),
    {
        match self.mode {
            Mode::Never => {}
            Mode::Geometric { ln_q, ref mut gap } => {
                if count == 0 {
                    return;
                }
                let span64 = span as u64;
                // `pos` is the cursor measured from the start of `site`'s
                // span — the same site-local coordinate the sequential
                // form uses, so saturating-add clamping lands on the
                // identical values.
                let mut site = 0usize;
                let mut pos = gap.take().unwrap_or_else(|| geometric_gap(ln_q, rng));
                buf.clear();
                while site < count {
                    while pos < span64 {
                        let lane = pos as usize;
                        let w = (lane / WORD_BITS) as u32;
                        let bit = 1u64 << (lane % WORD_BITS);
                        match buf.last_mut() {
                            Some(last) if last.0 == w => last.1 |= bit,
                            _ => buf.push((w, bit)),
                        }
                        pos = pos
                            .saturating_add(1)
                            .saturating_add(geometric_gap(ln_q, rng));
                    }
                    if !buf.is_empty() {
                        flush(site, buf, rng);
                        buf.clear();
                    }
                    // The cursor cleared this site: retire every fully
                    // skipped site with one division (≡ the sequential
                    // per-site `gap -= span` fast path).
                    let skip = (pos / span64) as usize;
                    let remaining = count - site;
                    if skip >= remaining {
                        pos -= remaining as u64 * span64;
                        site = count;
                    } else {
                        pos -= skip as u64 * span64;
                        site += skip;
                    }
                }
                *gap = Some(pos);
            }
            // Dense modes have no cross-site fast path; the sequential
            // form *is* the stream definition.
            _ => {
                for s in 0..count {
                    self.hit_words(span, rng, buf);
                    if !buf.is_empty() {
                        flush(s, buf, rng);
                    }
                }
            }
        }
    }

    /// Overwrites `words` with a flip mask for `span` trials: bit `i` of
    /// the grid (lane `i % 64` of word `i / 64`) is set iff trial `i`
    /// fired. Bits at and beyond `span` are left clear.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `⌈span/64⌉`.
    pub fn fill_mask<R: Rng + ?Sized>(&mut self, words: &mut [u64], span: usize, rng: &mut R) {
        let needed = span.div_ceil(WORD_BITS);
        assert!(
            words.len() >= needed,
            "mask too short: {} words for span {span}",
            words.len()
        );
        match self.mode {
            Mode::Slice { pattern } => {
                for (w, word) in words.iter_mut().enumerate().take(needed) {
                    let lanes = (span - w * WORD_BITS).min(WORD_BITS);
                    let mut v = slice_word(pattern, rng);
                    if lanes < WORD_BITS {
                        v &= (1u64 << lanes) - 1;
                    }
                    *word = v;
                }
                for word in words.iter_mut().skip(needed) {
                    *word = 0;
                }
            }
            _ => {
                words.fill(0);
                self.for_each_hit(span, rng, |s| {
                    words[s / WORD_BITS] |= 1u64 << (s % WORD_BITS);
                });
            }
        }
    }
}

/// One geometric gap (number of misses before the next hit) with
/// parameter `p`, via inversion: `⌊ln(u)/ln(1−p)⌋` for `u ∈ (0, 1]`.
#[inline]
fn geometric_gap<R: Rng + ?Sized>(ln_q: f64, rng: &mut R) -> u64 {
    // `gen::<f64>()` is uniform on [0, 1); reflect to (0, 1] so ln is
    // finite. ln_q < 0, so the ratio is ≥ 0.
    let u = 1.0 - rng.gen::<f64>();
    let g = u.ln() / ln_q;
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

/// One word of 64 Bernoulli(`pattern/2³²`) lanes by bit-slice
/// composition, folding from the lowest set slice upward.
#[inline]
fn slice_word<R: Rng + ?Sized>(pattern: u32, rng: &mut R) -> u64 {
    debug_assert!(pattern != 0);
    let mut r = 0u64;
    for i in pattern.trailing_zeros()..SLICE_BITS {
        let w = rng.gen::<u64>();
        if pattern >> i & 1 == 1 {
            r |= w;
        } else {
            r &= w;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_rate(p: f64, trials: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = BernoulliWords::new(p);
        let mut hits = 0usize;
        sampler.for_each_hit(trials, &mut rng, |_| hits += 1);
        hits as f64 / trials as f64
    }

    #[test]
    fn extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut never = BernoulliWords::new(0.0);
        let mut always = BernoulliWords::new(1.0);
        let mut mask = [0u64; 2];
        never.fill_mask(&mut mask, 100, &mut rng);
        assert_eq!(mask, [0, 0]);
        always.fill_mask(&mut mask, 100, &mut rng);
        assert_eq!(mask[0], !0u64);
        assert_eq!(mask[1], (1u64 << 36) - 1);
    }

    #[test]
    fn mode_selection_tracks_probability() {
        assert!(BernoulliWords::new(1e-4).uses_geometric_skipping());
        assert!(BernoulliWords::new(0.049).uses_geometric_skipping());
        assert!(!BernoulliWords::new(0.5).uses_geometric_skipping());
        assert!(!BernoulliWords::new(0.0).uses_geometric_skipping());
    }

    #[test]
    fn sparse_rate_within_binomial_tolerance() {
        for (p, seed) in [(0.001, 2u64), (0.01, 3), (0.04, 4)] {
            let n = 400_000;
            let rate = empirical_rate(p, n, seed);
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!((rate - p).abs() < 5.0 * sigma, "p={p}: rate {rate}");
        }
    }

    #[test]
    fn dense_rate_within_binomial_tolerance() {
        for (p, seed) in [(0.05, 5u64), (0.25, 6), (0.5, 7), (0.9, 8)] {
            let n = 200_000;
            let rate = empirical_rate(p, n, seed);
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!((rate - p).abs() < 5.0 * sigma, "p={p}: rate {rate}");
        }
    }

    #[test]
    fn cursor_spans_call_boundaries_unbiased() {
        // Many small spans must see the same rate as one big span: the
        // geometric cursor may not reset between calls.
        let p = 0.002;
        let mut rng = StdRng::seed_from_u64(9);
        let mut sampler = BernoulliWords::new(p);
        let mut hits = 0usize;
        let spans = [1usize, 7, 64, 65, 13, 256, 3];
        let mut total = 0usize;
        for _ in 0..4000 {
            for &s in &spans {
                total += s;
                sampler.for_each_hit(s, &mut rng, |_| hits += 1);
            }
        }
        let rate = hits as f64 / total as f64;
        let sigma = (p * (1.0 - p) / total as f64).sqrt();
        assert!((rate - p).abs() < 5.0 * sigma, "rate {rate}");
    }

    #[test]
    fn fill_mask_matches_for_each_hit() {
        for p in [0.004, 0.3] {
            let mut a = BernoulliWords::new(p);
            let mut b = a.clone();
            let mut rng_a = StdRng::seed_from_u64(11);
            let mut rng_b = StdRng::seed_from_u64(11);
            let span = 130;
            let mut mask = [0u64; 3];
            a.fill_mask(&mut mask, span, &mut rng_a);
            let mut from_hits = [0u64; 3];
            b.for_each_hit(span, &mut rng_b, |s| from_hits[s / 64] |= 1 << (s % 64));
            assert_eq!(mask, from_hits, "p={p}");
        }
    }

    #[test]
    fn hit_words_matches_fill_mask_and_rng_stream() {
        // Same bits, and — crucially — the same number of RNG draws, so
        // the two representations are interchangeable mid-stream.
        for p in [0.0, 0.004, 0.04, 0.3, 1.0] {
            let mut a = BernoulliWords::new(p);
            let mut b = a.clone();
            let mut rng_a = StdRng::seed_from_u64(23);
            let mut rng_b = StdRng::seed_from_u64(23);
            for span in [130usize, 64, 1, 256, 7] {
                let mut mask = vec![0u64; span.div_ceil(64)];
                a.fill_mask(&mut mask, span, &mut rng_a);
                let mut hits = Vec::new();
                b.hit_words(span, &mut rng_b, &mut hits);
                let mut from_hits = vec![0u64; span.div_ceil(64)];
                for &(w, m) in &hits {
                    from_hits[w as usize] |= m;
                }
                assert_eq!(mask, from_hits, "p={p} span={span}");
                assert!(hits.iter().all(|&(_, m)| m != 0), "p={p}");
                assert!(hits.windows(2).all(|h| h[0].0 < h[1].0), "p={p}");
            }
            // Streams still aligned: next draws agree.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "p={p}");
        }
    }

    /// (site index, flushed hit words, post-flush letter draw) — one
    /// entry per non-empty site.
    type FlushLog = Vec<(usize, Vec<(u32, u64)>, u64)>;

    #[test]
    fn hit_site_runs_matches_sequential_hit_words() {
        // The fused run walk must consume the exact RNG draws and
        // produce the exact per-site hit lists of `count` sequential
        // `hit_words` calls — including interleaved per-site "letter"
        // draws made by the flush callback, which is how noise programs
        // draw error letters between sites.
        for p in [0.0, 1e-6, 0.004, 0.04, 0.3, 1.0] {
            for (span, count) in [(256usize, 97usize), (16, 300), (1, 50), (130, 4)] {
                let mut a = BernoulliWords::new(p);
                let mut b = a.clone();
                let mut rng_a = StdRng::seed_from_u64(31);
                let mut rng_b = StdRng::seed_from_u64(31);
                // Sequential reference: per-site hit_words + letter draw.
                let mut seq: FlushLog = Vec::new();
                let mut hits = Vec::new();
                for s in 0..count {
                    a.hit_words(span, &mut rng_a, &mut hits);
                    if !hits.is_empty() {
                        seq.push((s, hits.clone(), rng_a.gen::<u64>()));
                    }
                }
                // Fused form.
                let mut run: FlushLog = Vec::new();
                let mut buf = Vec::new();
                b.hit_site_runs(span, count, &mut rng_b, &mut buf, |s, h, rng| {
                    run.push((s, h.to_vec(), rng.gen::<u64>()));
                });
                assert_eq!(seq, run, "p={p} span={span} count={count}");
                // Cursors and streams still aligned: one more joint call
                // agrees, and so do the next raw draws.
                a.hit_words(span, &mut rng_a, &mut hits);
                let mut tail = Vec::new();
                b.hit_site_runs(span, 1, &mut rng_b, &mut buf, |_, h, _| {
                    tail = h.to_vec();
                });
                assert_eq!(hits, tail, "p={p} span={span} count={count}");
                assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "p={p}");
            }
        }
    }

    #[test]
    fn padding_bits_stay_clear() {
        for p in [0.01, 0.7, 1.0] {
            let mut sampler = BernoulliWords::new(p);
            let mut rng = StdRng::seed_from_u64(13);
            let mut mask = [!0u64; 2];
            sampler.fill_mask(&mut mask, 70, &mut rng);
            assert_eq!(mask[1] & !((1u64 << 6) - 1), 0, "p={p}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        for p in [0.003, 0.4] {
            let run = |seed| {
                let mut sampler = BernoulliWords::new(p);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut mask = vec![0u64; 8];
                sampler.fill_mask(&mut mask, 512, &mut rng);
                mask
            };
            assert_eq!(run(42), run(42));
            assert_ne!(run(42), run(43));
        }
    }

    #[test]
    fn slice_pattern_is_faithful_for_dyadic_p() {
        // p = 0.5 needs exactly one slice; its lanes must match one raw
        // RNG word drawn from the same stream.
        let mut sampler = BernoulliWords::new(0.5);
        let mut rng = StdRng::seed_from_u64(17);
        let mut reference = StdRng::seed_from_u64(17);
        let mut mask = [0u64; 1];
        sampler.fill_mask(&mut mask, 64, &mut rng);
        assert_eq!(mask[0], reference.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = BernoulliWords::new(1.2);
    }
}
