//! Bit-sliced batched Bernoulli sampling.
//!
//! Monte-Carlo noise injection asks the same question millions of times:
//! "does an error fire at this (site, shot) trial?" Answering with one
//! `rng.gen_bool(p)` per trial costs a full RNG draw *per shot per site*.
//! [`BernoulliWords`] answers 64 trials per machine word in `O(words)`
//! amortized, with two regimes chosen automatically from `p`:
//!
//! * **Geometric skipping** (sparse `p`): successive hits in an infinite
//!   Bernoulli(`p`) trial stream are separated by geometric gaps, so the
//!   sampler draws `gap = ⌊ln(u)/ln(1−p)⌋` and jumps straight to the next
//!   hit. The cursor persists across calls, so a *program* of many sites
//!   sharing one probability consumes the flat `(site × shot)` bit-grid
//!   with one logarithm per **hit**, not per site — cost `O(expected
//!   hits)` plus `O(1)` bookkeeping per site.
//! * **Bit-slice refinement** (dense `p`): write `p ≈ 0.b₁b₂…b₃₂` in
//!   binary and fold uniform random words from the least-significant
//!   slice upward — `r = rand | r` where `bᵢ = 1`, `r = rand & r` where
//!   `bᵢ = 0` — which leaves every lane set with probability `p` to
//!   within `2⁻³²`, branch-free and word-parallel.
//!
//! Determinism: the sampler is a pure function of its RNG stream, so
//! callers that derive one RNG per fixed-size batch (e.g. via
//! [`crate::SeedSequence::derive_index`]) get results that are
//! bit-identical for a fixed seed and independent of how batches are
//! scheduled across threads.

use rand::Rng;

/// Trials per output word.
const WORD_BITS: usize = 64;

/// Resolution of the bit-slice approximation: `p` is quantized to a
/// multiple of `2⁻³²`.
const SLICE_BITS: u32 = 32;

/// Probability below which geometric skipping beats slice composition.
/// A slice word costs up to 32 RNG draws; a geometric hit costs one draw
/// plus a logarithm, and a *miss* costs nothing — so sparse sites want
/// skipping and dense sites want slices. The crossover sits near
/// `64·p · c_hit ≈ 32 · c_draw`.
const GEOMETRIC_THRESHOLD: f64 = 0.05;

#[derive(Clone, Debug, PartialEq)]
enum Mode {
    /// `p ≤ 0`: no trial ever fires.
    Never,
    /// `p ≥ 1` (after quantization): every trial fires.
    Always,
    /// Sparse: skip geometric gaps through the flat trial stream.
    /// `gap` is the number of future misses before the next hit
    /// (`None` until the first draw).
    Geometric { ln_q: f64, gap: Option<u64> },
    /// Dense: compose `popcount + zeros` random words per output word.
    /// `pattern / 2³²` approximates `p`; bit 31 carries weight `1/2`.
    Slice { pattern: u32 },
}

/// A batched Bernoulli(`p`) sampler producing 64 independent trials per
/// `u64` (bit `i` set ⇔ trial `i` fired). See the module docs for the
/// geometric-skip / bit-slice split and the seeding discipline.
///
/// # Examples
///
/// ```
/// use eftq_numerics::BernoulliWords;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut sampler = BernoulliWords::new(0.25);
/// let mut mask = [0u64; 16];
/// sampler.fill_mask(&mut mask, 1024, &mut rng);
/// let hits: u32 = mask.iter().map(|w| w.count_ones()).sum();
/// // ~256 expected; loose 5σ band.
/// assert!((hits as f64 - 256.0).abs() < 5.0 * (1024.0f64 * 0.25 * 0.75).sqrt());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BernoulliWords {
    p: f64,
    mode: Mode,
}

impl BernoulliWords {
    /// Builds a sampler for success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let mode = if p <= 0.0 {
            Mode::Never
        } else if p < GEOMETRIC_THRESHOLD {
            Mode::Geometric {
                ln_q: (1.0 - p).ln(),
                gap: None,
            }
        } else {
            let pattern = (p * (1u64 << SLICE_BITS) as f64).round();
            if pattern >= 2f64.powi(SLICE_BITS as i32) {
                Mode::Always
            } else {
                Mode::Slice {
                    pattern: pattern as u32,
                }
            }
        };
        BernoulliWords { p, mode }
    }

    /// The success probability this sampler was built for.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Whether the sampler uses geometric skipping (sparse regime) rather
    /// than bit-slice composition.
    pub fn uses_geometric_skipping(&self) -> bool {
        matches!(self.mode, Mode::Geometric { .. })
    }

    /// Calls `f(i)` for every firing trial `i < span`, consuming exactly
    /// `span` trials from the sampler's stream (the geometric cursor
    /// carries any remaining gap into the next call).
    pub fn for_each_hit<R, F>(&mut self, span: usize, rng: &mut R, mut f: F)
    where
        R: Rng + ?Sized,
        F: FnMut(usize),
    {
        match self.mode {
            Mode::Never => {}
            Mode::Always => {
                for s in 0..span {
                    f(s);
                }
            }
            Mode::Geometric { ln_q, ref mut gap } => {
                let mut pos = gap.take().unwrap_or_else(|| geometric_gap(ln_q, rng));
                while pos < span as u64 {
                    f(pos as usize);
                    pos = pos
                        .saturating_add(1)
                        .saturating_add(geometric_gap(ln_q, rng));
                }
                *gap = Some(pos - span as u64);
            }
            Mode::Slice { pattern } => {
                let mut base = 0usize;
                while base < span {
                    let lanes = (span - base).min(WORD_BITS);
                    let mut w = slice_word(pattern, rng);
                    if lanes < WORD_BITS {
                        w &= (1u64 << lanes) - 1;
                    }
                    while w != 0 {
                        f(base + w.trailing_zeros() as usize);
                        w &= w - 1;
                    }
                    base += WORD_BITS;
                }
            }
        }
    }

    /// Overwrites `words` with a flip mask for `span` trials: bit `i` of
    /// the grid (lane `i % 64` of word `i / 64`) is set iff trial `i`
    /// fired. Bits at and beyond `span` are left clear.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `⌈span/64⌉`.
    pub fn fill_mask<R: Rng + ?Sized>(&mut self, words: &mut [u64], span: usize, rng: &mut R) {
        let needed = span.div_ceil(WORD_BITS);
        assert!(
            words.len() >= needed,
            "mask too short: {} words for span {span}",
            words.len()
        );
        match self.mode {
            Mode::Slice { pattern } => {
                for (w, word) in words.iter_mut().enumerate().take(needed) {
                    let lanes = (span - w * WORD_BITS).min(WORD_BITS);
                    let mut v = slice_word(pattern, rng);
                    if lanes < WORD_BITS {
                        v &= (1u64 << lanes) - 1;
                    }
                    *word = v;
                }
                for word in words.iter_mut().skip(needed) {
                    *word = 0;
                }
            }
            _ => {
                words.fill(0);
                self.for_each_hit(span, rng, |s| {
                    words[s / WORD_BITS] |= 1u64 << (s % WORD_BITS);
                });
            }
        }
    }
}

/// One geometric gap (number of misses before the next hit) with
/// parameter `p`, via inversion: `⌊ln(u)/ln(1−p)⌋` for `u ∈ (0, 1]`.
#[inline]
fn geometric_gap<R: Rng + ?Sized>(ln_q: f64, rng: &mut R) -> u64 {
    // `gen::<f64>()` is uniform on [0, 1); reflect to (0, 1] so ln is
    // finite. ln_q < 0, so the ratio is ≥ 0.
    let u = 1.0 - rng.gen::<f64>();
    let g = u.ln() / ln_q;
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

/// One word of 64 Bernoulli(`pattern/2³²`) lanes by bit-slice
/// composition, folding from the lowest set slice upward.
#[inline]
fn slice_word<R: Rng + ?Sized>(pattern: u32, rng: &mut R) -> u64 {
    debug_assert!(pattern != 0);
    let mut r = 0u64;
    for i in pattern.trailing_zeros()..SLICE_BITS {
        let w = rng.gen::<u64>();
        if pattern >> i & 1 == 1 {
            r |= w;
        } else {
            r &= w;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_rate(p: f64, trials: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = BernoulliWords::new(p);
        let mut hits = 0usize;
        sampler.for_each_hit(trials, &mut rng, |_| hits += 1);
        hits as f64 / trials as f64
    }

    #[test]
    fn extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut never = BernoulliWords::new(0.0);
        let mut always = BernoulliWords::new(1.0);
        let mut mask = [0u64; 2];
        never.fill_mask(&mut mask, 100, &mut rng);
        assert_eq!(mask, [0, 0]);
        always.fill_mask(&mut mask, 100, &mut rng);
        assert_eq!(mask[0], !0u64);
        assert_eq!(mask[1], (1u64 << 36) - 1);
    }

    #[test]
    fn mode_selection_tracks_probability() {
        assert!(BernoulliWords::new(1e-4).uses_geometric_skipping());
        assert!(BernoulliWords::new(0.049).uses_geometric_skipping());
        assert!(!BernoulliWords::new(0.5).uses_geometric_skipping());
        assert!(!BernoulliWords::new(0.0).uses_geometric_skipping());
    }

    #[test]
    fn sparse_rate_within_binomial_tolerance() {
        for (p, seed) in [(0.001, 2u64), (0.01, 3), (0.04, 4)] {
            let n = 400_000;
            let rate = empirical_rate(p, n, seed);
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!((rate - p).abs() < 5.0 * sigma, "p={p}: rate {rate}");
        }
    }

    #[test]
    fn dense_rate_within_binomial_tolerance() {
        for (p, seed) in [(0.05, 5u64), (0.25, 6), (0.5, 7), (0.9, 8)] {
            let n = 200_000;
            let rate = empirical_rate(p, n, seed);
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!((rate - p).abs() < 5.0 * sigma, "p={p}: rate {rate}");
        }
    }

    #[test]
    fn cursor_spans_call_boundaries_unbiased() {
        // Many small spans must see the same rate as one big span: the
        // geometric cursor may not reset between calls.
        let p = 0.002;
        let mut rng = StdRng::seed_from_u64(9);
        let mut sampler = BernoulliWords::new(p);
        let mut hits = 0usize;
        let spans = [1usize, 7, 64, 65, 13, 256, 3];
        let mut total = 0usize;
        for _ in 0..4000 {
            for &s in &spans {
                total += s;
                sampler.for_each_hit(s, &mut rng, |_| hits += 1);
            }
        }
        let rate = hits as f64 / total as f64;
        let sigma = (p * (1.0 - p) / total as f64).sqrt();
        assert!((rate - p).abs() < 5.0 * sigma, "rate {rate}");
    }

    #[test]
    fn fill_mask_matches_for_each_hit() {
        for p in [0.004, 0.3] {
            let mut a = BernoulliWords::new(p);
            let mut b = a.clone();
            let mut rng_a = StdRng::seed_from_u64(11);
            let mut rng_b = StdRng::seed_from_u64(11);
            let span = 130;
            let mut mask = [0u64; 3];
            a.fill_mask(&mut mask, span, &mut rng_a);
            let mut from_hits = [0u64; 3];
            b.for_each_hit(span, &mut rng_b, |s| from_hits[s / 64] |= 1 << (s % 64));
            assert_eq!(mask, from_hits, "p={p}");
        }
    }

    #[test]
    fn padding_bits_stay_clear() {
        for p in [0.01, 0.7, 1.0] {
            let mut sampler = BernoulliWords::new(p);
            let mut rng = StdRng::seed_from_u64(13);
            let mut mask = [!0u64; 2];
            sampler.fill_mask(&mut mask, 70, &mut rng);
            assert_eq!(mask[1] & !((1u64 << 6) - 1), 0, "p={p}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        for p in [0.003, 0.4] {
            let run = |seed| {
                let mut sampler = BernoulliWords::new(p);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut mask = vec![0u64; 8];
                sampler.fill_mask(&mut mask, 512, &mut rng);
                mask
            };
            assert_eq!(run(42), run(42));
            assert_ne!(run(42), run(43));
        }
    }

    #[test]
    fn slice_pattern_is_faithful_for_dyadic_p() {
        // p = 0.5 needs exactly one slice; its lanes must match one raw
        // RNG word drawn from the same stream.
        let mut sampler = BernoulliWords::new(0.5);
        let mut rng = StdRng::seed_from_u64(17);
        let mut reference = StdRng::seed_from_u64(17);
        let mut mask = [0u64; 1];
        sampler.fill_mask(&mut mask, 64, &mut rng);
        assert_eq!(mask[0], reference.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = BernoulliWords::new(1.2);
    }
}
