//! Summary statistics and distribution helpers.
//!
//! Besides the usual mean/variance utilities used by Monte-Carlo estimators,
//! this module carries the geometric-distribution facts on which the paper's
//! Section-9 patch-shuffling feasibility proof rests: a repeat-until-success
//! injection is a geometric random variable, and the proof bounds the number
//! of trials by `E[X] + σ[X]`.

/// Arithmetic mean of a slice. Returns `NaN` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(eftq_numerics::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance. Returns `0.0` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean.
pub fn standard_error(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Geometric mean of strictly positive values. Returns `NaN` if any value is
/// non-positive or the slice is empty. Used for averaging the γ relative
/// improvements, which are ratios.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A geometric distribution over the number of trials until first success
/// (support {1, 2, ...}) with success probability `p_success`.
///
/// This is the distribution of repeat-until-success magic-state injection
/// attempts, and of the number of `Rz` consumption attempts (where
/// `p_success = 1/2`, giving the paper's `E[g] = 2`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p_success <= 1`.
    pub fn new(p_success: f64) -> Self {
        assert!(
            p_success > 0.0 && p_success <= 1.0,
            "success probability must be in (0, 1], got {p_success}"
        );
        Geometric { p: p_success }
    }

    /// Success probability per trial.
    pub fn p_success(&self) -> f64 {
        self.p
    }

    /// Expected number of trials `E[X] = 1/p`.
    pub fn expectation(&self) -> f64 {
        1.0 / self.p
    }

    /// Variance `(1-p)/p²`.
    pub fn variance(&self) -> f64 {
        (1.0 - self.p) / (self.p * self.p)
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The paper's trial budget `N_trials = E[X] + σ[X]
    /// = (1 + sqrt(1-p)) / p` (Section 9).
    pub fn trials_to_one_sigma(&self) -> f64 {
        (1.0 + (1.0 - self.p).sqrt()) / self.p
    }

    /// `P[X ≤ k]` for a real-valued budget `k` (uses `floor(k)` trials):
    /// `1 - (1-p)^{⌊k⌋}`.
    pub fn cdf(&self, k: f64) -> f64 {
        if k < 1.0 {
            return 0.0;
        }
        1.0 - (1.0 - self.p).powf(k.floor())
    }

    /// The "high probability" of the paper's Section-9 proof:
    /// `P[X ≤ E[X] + σ[X]]` computed with the *real-valued* exponent
    /// `1 - (1-p)^{N_trials}` exactly as Equation (5)'s surrounding text does
    /// (the paper does not floor the exponent; at d = 11, p_phys = 1e-3 this
    /// evaluates to 0.9391).
    pub fn prob_within_one_sigma(&self) -> f64 {
        1.0 - (1.0 - self.p).powf(self.trials_to_one_sigma())
    }
}

/// Minimum of a slice (`NaN`-free input assumed). Returns `NaN` when empty.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::NAN, |a, b| if a < b { a } else { b })
}

/// Maximum of a slice (`NaN`-free input assumed). Returns `NaN` when empty.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::NAN, |a, b| if a > b { a } else { b })
}

/// Linearly spaced grid of `n ≥ 2` points from `a` to `b` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (b - a) / (n - 1) as f64;
    (0..n).map(|i| a + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert!(mean(&[]).is_nan());
        assert_eq!(variance(&[1.0]), 0.0);
        assert!(standard_error(&[]).is_nan());
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, -1.0]).is_nan());
    }

    #[test]
    fn geometric_distribution_basics() {
        let g = Geometric::new(0.5);
        assert_eq!(g.expectation(), 2.0);
        assert_eq!(g.variance(), 2.0);
        assert!((g.cdf(1.0) - 0.5).abs() < 1e-12);
        assert!((g.cdf(2.0) - 0.75).abs() < 1e-12);
        assert_eq!(g.cdf(0.5), 0.0);
    }

    /// The exact numbers quoted in Section 9 of the paper for d = 11 and
    /// p_phys = 1e-3: p_pass = 1 − 2p(1−p)(d²−1) = 0.760240,
    /// N_trials = 1.959, P[X ≤ N_trials] = 0.9391.
    #[test]
    fn section9_numbers() {
        let p: f64 = 1e-3;
        let d = 11.0f64;
        let p_pass = 1.0 - 2.0 * p * (1.0 - p) * (d * d - 1.0);
        let g = Geometric::new(p_pass);
        assert!(
            (g.trials_to_one_sigma() - 1.959).abs() < 2e-3,
            "{}",
            g.trials_to_one_sigma()
        );
        assert!(
            (g.prob_within_one_sigma() - 0.9391).abs() < 2e-3,
            "{}",
            g.prob_within_one_sigma()
        );
    }

    #[test]
    fn rz_consumption_expected_attempts_is_two() {
        // Paper §4.4: E[g] = 2 for p_succ = p_fail = 0.5.
        let g = Geometric::new(0.5);
        assert_eq!(g.expectation(), 2.0);
    }

    #[test]
    #[should_panic(expected = "success probability")]
    fn geometric_rejects_zero() {
        let _ = Geometric::new(0.0);
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let xs = linspace(0.0, 1.0, 5);
        assert_eq!(xs.len(), 5);
        assert_eq!(xs[0], 0.0);
        assert_eq!(xs[4], 1.0);
        assert!((xs[1] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 2.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 3.0);
    }
}
