//! Lanczos ground-state eigensolver.
//!
//! The γ metric of the paper (Equation 3) needs exact ground-state energies
//! `E₀` for 8- and 12-qubit Hamiltonians. Dense diagonalization of a
//! 4096×4096 Hermitian matrix is unnecessary: the Hamiltonians are sums of a
//! few hundred Pauli strings, each of which acts on a state vector in
//! `O(2ⁿ)`, so a matrix-free Lanczos iteration with full reorthogonalization
//! converges to the extremal eigenvalue in a few dozen matrix–vector
//! products.
//!
//! The implementation works over *complex* vectors (Pauli strings with `Y`
//! factors produce complex matrix elements) but exploits Hermiticity: the
//! tridiagonal projection is real symmetric, and its extremal eigenvalue is
//! extracted with a bisection on the Sturm sequence, which is simple and
//! numerically robust.

use crate::complex::Complex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Options controlling the Lanczos iteration.
#[derive(Clone, Copy, Debug)]
pub struct LanczosOptions {
    /// Maximum Krylov dimension (number of matrix–vector products).
    pub max_iters: usize,
    /// Convergence threshold on the change of the extremal Ritz value
    /// between consecutive iterations.
    pub tol: f64,
    /// Seed for the random starting vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_iters: 200,
            tol: 1e-10,
            seed: 0x5eed_1a2c,
        }
    }
}

/// Result of a converged (or iteration-capped) Lanczos run.
#[derive(Clone, Debug)]
pub struct LanczosResult {
    /// The smallest eigenvalue found.
    pub ground_energy: f64,
    /// Number of Lanczos steps actually performed.
    pub iterations: usize,
    /// Whether the tolerance was met before hitting `max_iters`.
    pub converged: bool,
}

/// Errors from [`lanczos`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LanczosError {
    /// The problem dimension was zero.
    EmptyDimension,
    /// The operator annihilated the starting vector and every restart.
    BreakdownAtStart,
}

impl fmt::Display for LanczosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LanczosError::EmptyDimension => write!(f, "dimension must be positive"),
            LanczosError::BreakdownAtStart => {
                write!(f, "lanczos iteration broke down on the starting vector")
            }
        }
    }
}

impl std::error::Error for LanczosError {}

/// Computes the smallest eigenvalue of a Hermitian operator given only its
/// matrix–vector product.
///
/// `matvec(input, output)` must write `H·input` into `output`; `output` is
/// pre-zeroed by the caller of the closure. The operator must be Hermitian —
/// this is not checked (it cannot be, matrix-free) but non-Hermitian input
/// produces meaningless results.
///
/// # Errors
///
/// Returns [`LanczosError::EmptyDimension`] when `dim == 0` and
/// [`LanczosError::BreakdownAtStart`] if the iteration cannot make progress
/// (e.g. the operator is identically zero on every random start — in that
/// case the spectrum is {0} anyway and the caller can special-case it).
///
/// # Examples
///
/// ```
/// use eftq_numerics::{lanczos, LanczosOptions, Complex};
///
/// // Diagonal operator with spectrum {-3, 1, 2, 5}.
/// let diag = [-3.0, 1.0, 2.0, 5.0];
/// let result = lanczos(4, LanczosOptions::default(), |v, out| {
///     for i in 0..4 {
///         out[i] = v[i] * diag[i];
///     }
/// })
/// .unwrap();
/// assert!((result.ground_energy - (-3.0)).abs() < 1e-9);
/// ```
pub fn lanczos<F>(
    dim: usize,
    options: LanczosOptions,
    mut matvec: F,
) -> Result<LanczosResult, LanczosError>
where
    F: FnMut(&[Complex], &mut [Complex]),
{
    if dim == 0 {
        return Err(LanczosError::EmptyDimension);
    }
    let mut rng = StdRng::seed_from_u64(options.seed);
    let m = options.max_iters.min(dim.max(1));

    // Krylov basis kept for full reorthogonalization (dims here are ≤ 4096²
    // worth of memory only for the few stored vectors; m ≤ 200).
    let mut basis: Vec<Vec<Complex>> = Vec::with_capacity(m);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);

    let mut v = random_unit_vector(dim, &mut rng);
    let mut w = vec![Complex::ZERO; dim];
    let mut prev_ritz = f64::INFINITY;
    let mut converged = false;

    for step in 0..m {
        basis.push(v.clone());
        w.iter_mut().for_each(|x| *x = Complex::ZERO);
        matvec(&v, &mut w);

        // α_j = ⟨v_j | w⟩ (real for Hermitian H).
        let alpha = dot(&basis[step], &w).re;
        alphas.push(alpha);

        // w ← w - α v_j - β v_{j-1}, then full reorthogonalization.
        axpy(&mut w, -Complex::real(alpha), &basis[step]);
        if step > 0 {
            let beta_prev = betas[step - 1];
            let prev = &basis[step - 1];
            axpy(&mut w, -Complex::real(beta_prev), prev);
        }
        for b in &basis {
            let overlap = dot(b, &w);
            if overlap.abs() > 0.0 {
                axpy(&mut w, -overlap, b);
            }
        }

        let beta = norm(&w);
        let ritz = smallest_tridiag_eigenvalue(&alphas, &betas);
        if (ritz - prev_ritz).abs() < options.tol {
            converged = true;
            return Ok(LanczosResult {
                ground_energy: ritz,
                iterations: step + 1,
                converged,
            });
        }
        prev_ritz = ritz;

        if beta < 1e-13 {
            // Invariant subspace exhausted: the Ritz value is exact for the
            // explored subspace. Restart with a fresh random direction
            // orthogonal to the basis; if nothing is left, we are done.
            let mut fresh = random_unit_vector(dim, &mut rng);
            for b in &basis {
                let overlap = dot(b, &fresh);
                axpy(&mut fresh, -overlap, b);
            }
            let n = norm(&fresh);
            if n < 1e-10 {
                return Ok(LanczosResult {
                    ground_energy: ritz,
                    iterations: step + 1,
                    converged: true,
                });
            }
            scale(&mut fresh, 1.0 / n);
            betas.push(0.0);
            v = fresh;
        } else {
            betas.push(beta);
            v = w.clone();
            scale(&mut v, 1.0 / beta);
        }
    }

    let ritz = smallest_tridiag_eigenvalue(&alphas, &betas);
    Ok(LanczosResult {
        ground_energy: ritz,
        iterations: m,
        converged,
    })
}

fn random_unit_vector(dim: usize, rng: &mut StdRng) -> Vec<Complex> {
    let mut v: Vec<Complex> = (0..dim)
        .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let n = norm(&v);
    if n > 0.0 {
        scale(&mut v, 1.0 / n);
    } else {
        v[0] = Complex::ONE;
    }
    v
}

fn dot(a: &[Complex], b: &[Complex]) -> Complex {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x.conj() * *y)
        .fold(Complex::ZERO, |acc, t| acc + t)
}

fn axpy(y: &mut [Complex], a: Complex, x: &[Complex]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * *xi;
    }
}

fn norm(v: &[Complex]) -> f64 {
    v.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt()
}

fn scale(v: &mut [Complex], k: f64) {
    for x in v.iter_mut() {
        *x *= k;
    }
}

/// Smallest eigenvalue of the symmetric tridiagonal matrix with diagonal
/// `alphas` and off-diagonal `betas` (`betas.len() >= alphas.len() - 1`;
/// extra entries are ignored), via bisection on the Sturm sequence.
fn smallest_tridiag_eigenvalue(alphas: &[f64], betas: &[f64]) -> f64 {
    let n = alphas.len();
    assert!(n > 0, "tridiagonal matrix must be non-empty");
    if n == 1 {
        return alphas[0];
    }
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let left = if i > 0 { betas[i - 1].abs() } else { 0.0 };
        let right = if i < n - 1 { betas[i].abs() } else { 0.0 };
        lo = lo.min(alphas[i] - left - right);
        hi = hi.max(alphas[i] + left + right);
    }
    // Count of eigenvalues < x via the Sturm sequence of the shifted matrix.
    let count_below = |x: f64| -> usize {
        let mut count = 0;
        let mut d = alphas[0] - x;
        if d < 0.0 {
            count += 1;
        }
        for i in 1..n {
            let b2 = betas[i - 1] * betas[i - 1];
            let denom = if d.abs() < 1e-300 {
                1e-300_f64.copysign(if d == 0.0 { 1.0 } else { d })
            } else {
                d
            };
            d = alphas[i] - x - b2 / denom;
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };
    // Bisect for the first eigenvalue: smallest x with count_below(x+) >= 1.
    let (mut lo, mut hi) = (lo - 1.0, hi + 1.0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count_below(mid) >= 1 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-13 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_op(diag: &[f64]) -> impl FnMut(&[Complex], &mut [Complex]) + '_ {
        move |v, out| {
            for (i, d) in diag.iter().enumerate() {
                out[i] = v[i] * *d;
            }
        }
    }

    #[test]
    fn diagonal_spectrum() {
        let diag = [4.0, -1.0, 7.5, 0.0, 3.0, -0.5];
        let r = lanczos(diag.len(), LanczosOptions::default(), diag_op(&diag)).unwrap();
        assert!((r.ground_energy - (-1.0)).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn degenerate_ground_state() {
        let diag = [-2.0, -2.0, 5.0, 5.0, 9.0];
        let r = lanczos(diag.len(), LanczosOptions::default(), diag_op(&diag)).unwrap();
        assert!((r.ground_energy - (-2.0)).abs() < 1e-8);
    }

    #[test]
    fn two_by_two_offdiagonal() {
        // H = [[0, 1], [1, 0]] → eigenvalues ±1.
        let r = lanczos(2, LanczosOptions::default(), |v, out| {
            out[0] = v[1];
            out[1] = v[0];
        })
        .unwrap();
        assert!((r.ground_energy - (-1.0)).abs() < 1e-9);
    }

    #[test]
    fn complex_hermitian_operator() {
        // H = [[1, i], [-i, 1]] → eigenvalues 0 and 2.
        let r = lanczos(2, LanczosOptions::default(), |v, out| {
            out[0] = v[0] + Complex::I * v[1];
            out[1] = -Complex::I * v[0] + v[1];
        })
        .unwrap();
        assert!(r.ground_energy.abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn transverse_field_chain_known_energy() {
        // 2-qubit H = X0 X1 + Z0 + Z1 has ground energy 1 - sqrt(1+... ;
        // compute densely instead: basis |00>,|01>,|10>,|11> (q0 = low bit).
        // Z|0> = +|0>. H matrix:
        //   diag: Z0+Z1 → [2, 0, 0, -2]
        //   X0X1 couples |00>↔|11> and |01>↔|10>.
        let h = move |v: &[Complex], out: &mut [Complex]| {
            let d = [2.0, 0.0, 0.0, -2.0];
            for i in 0..4 {
                out[i] = v[i] * d[i];
            }
            out[0] += v[3];
            out[3] += v[0];
            out[1] += v[2];
            out[2] += v[1];
        };
        let r = lanczos(4, LanczosOptions::default(), h).unwrap();
        // Exact: eigenvalues of [[2,1],[1,-2]] block → ±sqrt(5); and [[0,1],[1,0]] → ±1.
        assert!((r.ground_energy - (-5.0f64.sqrt())).abs() < 1e-9);
    }

    #[test]
    fn dimension_one() {
        let r = lanczos(1, LanczosOptions::default(), |v, out| {
            out[0] = v[0] * 42.0;
        })
        .unwrap();
        assert!((r.ground_energy - 42.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dimension_errors() {
        let err = lanczos(0, LanczosOptions::default(), |_, _| {}).unwrap_err();
        assert_eq!(err, LanczosError::EmptyDimension);
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn zero_operator_returns_zero() {
        let r = lanczos(8, LanczosOptions::default(), |_, out| {
            out.iter_mut().for_each(|x| *x = Complex::ZERO);
        })
        .unwrap();
        assert!(r.ground_energy.abs() < 1e-9);
    }

    #[test]
    fn larger_random_symmetric_matches_dense_bound() {
        // Random symmetric matrix; check the Lanczos value is ≤ Rayleigh
        // quotient of any probe vector (variational property).
        let n = 64;
        let mut rng = StdRng::seed_from_u64(7);
        let mut mat = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let x: f64 = rng.gen::<f64>() - 0.5;
                mat[i * n + j] = x;
                mat[j * n + i] = x;
            }
        }
        let mv = |v: &[Complex], out: &mut [Complex]| {
            for i in 0..n {
                let mut acc = Complex::ZERO;
                for j in 0..n {
                    acc += v[j] * mat[i * n + j];
                }
                out[i] = acc;
            }
        };
        let r = lanczos(n, LanczosOptions::default(), mv).unwrap();
        let mut probe = vec![Complex::ZERO; n];
        for (i, p) in probe.iter_mut().enumerate() {
            *p = Complex::real(((i * 37 + 11) % 13) as f64 - 6.0);
        }
        let nn = probe.iter().map(|x| x.norm_sqr()).sum::<f64>();
        let mut hp = vec![Complex::ZERO; n];
        mv(&probe, &mut hp);
        let rq = probe
            .iter()
            .zip(hp.iter())
            .map(|(a, b)| (a.conj() * *b).re)
            .sum::<f64>()
            / nn;
        assert!(r.ground_energy <= rq + 1e-9);
    }

    #[test]
    fn sturm_bisection_simple() {
        // T = [[2,1],[1,2]] → eigenvalues 1 and 3.
        let e = smallest_tridiag_eigenvalue(&[2.0, 2.0], &[1.0]);
        assert!((e - 1.0).abs() < 1e-10);
    }
}
