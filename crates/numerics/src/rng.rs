//! Deterministic RNG plumbing.
//!
//! Every stochastic experiment in the workspace (Monte-Carlo noise sampling,
//! optimizer restarts, genetic populations) must be reproducible from a
//! single seed. [`SeedSequence`] derives independent child seeds from a root
//! seed using the SplitMix64 finalizer, so sibling components never share an
//! RNG stream by accident.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic seed derivation tree.
///
/// `SeedSequence` hands out child seeds that are (a) stable across runs for
/// the same root and labels and (b) statistically independent thanks to the
/// SplitMix64 mixing function.
///
/// # Examples
///
/// ```
/// use eftq_numerics::SeedSequence;
///
/// let root = SeedSequence::new(42);
/// let a = root.derive("optimizer");
/// let b = root.derive("noise");
/// assert_ne!(a.seed(), b.seed());
/// // Same labels always give the same seed.
/// assert_eq!(a.seed(), SeedSequence::new(42).derive("optimizer").seed());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a sequence from a root seed.
    pub const fn new(seed: u64) -> Self {
        SeedSequence { state: seed }
    }

    /// The seed value at this node of the tree.
    pub const fn seed(&self) -> u64 {
        self.state
    }

    /// Derives a labelled child sequence. Distinct labels (or distinct
    /// parents) give distinct, well-mixed child seeds.
    pub fn derive(&self, label: &str) -> SeedSequence {
        let mut h = self.state ^ 0x9e37_79b9_7f4a_7c15;
        for byte in label.as_bytes() {
            h = splitmix64(h ^ u64::from(*byte));
        }
        SeedSequence {
            state: splitmix64(h),
        }
    }

    /// Derives an indexed child sequence (for per-trial/per-shot streams).
    pub fn derive_index(&self, index: u64) -> SeedSequence {
        SeedSequence {
            state: splitmix64(self.state ^ splitmix64(index.wrapping_add(0xa5a5_a5a5))),
        }
    }

    /// Builds a standard RNG seeded at this node.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.state)
    }
}

/// The SplitMix64 finalizer: a bijective mixing function with good avalanche
/// behaviour, used purely for seed derivation (not as a generator).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        let a = SeedSequence::new(7).derive("x").derive_index(3);
        let b = SeedSequence::new(7).derive("x").derive_index(3);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_labels_distinct_seeds() {
        let root = SeedSequence::new(123);
        let mut seen = HashSet::new();
        for label in ["a", "b", "ab", "ba", "noise", "optimizer", ""] {
            assert!(
                seen.insert(root.derive(label).seed()),
                "collision on {label}"
            );
        }
    }

    #[test]
    fn distinct_indices_distinct_seeds() {
        let root = SeedSequence::new(99).derive("shots");
        let mut seen = HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(root.derive_index(i).seed()));
        }
    }

    #[test]
    fn rng_streams_differ() {
        let root = SeedSequence::new(5);
        let x: f64 = root.derive("a").rng().gen();
        let y: f64 = root.derive("b").rng().gen();
        assert_ne!(x, y);
    }

    #[test]
    fn splitmix_is_not_identity_and_mixes() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
        // Avalanche sanity: flipping one input bit changes many output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        assert!((a ^ b).count_ones() > 10);
    }
}
