//! The paper's benchmark Hamiltonians (Section 5.1).
//!
//! Physics: 1-D transverse-field Ising and field-free Heisenberg chains
//! with constant couplings `J ∈ {0.25, 0.5, 1.0}` (Equations 1 and 2).
//!
//! Chemistry: the paper builds H₂O, H₆ and LiH Hamiltonians with PySCF +
//! Qiskit Nature, restricted to six orbitals → 12-qubit Hamiltonians with
//! 367, 919 and 631 Pauli terms at two bond lengths (1 Å and 4.5 Å).
//! PySCF is not available to this reproduction, so [`molecular`] builds
//! *synthetic molecular-structure* Hamiltonians with exactly those qubit
//! and term counts from a deterministic electronic-structure-like
//! generator: one-body number terms (Z), Coulomb ladders (ZZ), hopping
//! pairs (XX+YY) and higher-weight exchange strings, with bond length
//! modulating the diagonal/hopping balance. This preserves the workload
//! shape the evaluation exercises (term count, locality mix, optimizer
//! landscape); absolute chemistry values are not claimed. See DESIGN.md.

use eftq_numerics::SeedSequence;
use eftq_pauli::{Pauli, PauliString, PauliSum};
use rand::Rng;
use std::collections::HashSet;

/// The paper's coupling sweep for the physics models.
pub const COUPLINGS: [f64; 3] = [0.25, 0.5, 1.0];

/// 1-D transverse-field Ising chain (Equation 1):
/// `H = J Σ X_i X_{i+1} + Σ Z_i`.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let h = eft_vqa::hamiltonians::ising_1d(8, 1.0);
/// assert_eq!(h.num_terms(), 7 + 8);
/// ```
pub fn ising_1d(n: usize, j: f64) -> PauliSum {
    assert!(n >= 2, "chain needs at least two sites");
    let mut h = PauliSum::new(n);
    for i in 0..n - 1 {
        let mut s = PauliString::identity(n);
        s.set_pauli(i, Pauli::X);
        s.set_pauli(i + 1, Pauli::X);
        h.push(j, s);
    }
    for i in 0..n {
        h.push(1.0, PauliString::single(n, i, Pauli::Z));
    }
    h
}

/// 1-D field-free Heisenberg chain (Equation 2):
/// `H = Σ (J X_i X_{i+1} + J Y_i Y_{i+1} + Z_i Z_{i+1})`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn heisenberg_1d(n: usize, j: f64) -> PauliSum {
    assert!(n >= 2, "chain needs at least two sites");
    let mut h = PauliSum::new(n);
    for i in 0..n - 1 {
        for (letter, coeff) in [(Pauli::X, j), (Pauli::Y, j), (Pauli::Z, 1.0)] {
            let mut s = PauliString::identity(n);
            s.set_pauli(i, letter);
            s.set_pauli(i + 1, letter);
            h.push(coeff, s);
        }
    }
    h
}

/// 2-D transverse-field Ising model on a `rows × cols` open-boundary
/// square lattice: `H = J Σ_{⟨ij⟩} X_i X_j + Σ_i Z_i`. The natural
/// scaling target beyond the paper's 1-D chains (its phase-transition
/// references [12, 16] cover both).
///
/// Qubit `(r, c)` has index `r·cols + c`.
///
/// # Panics
///
/// Panics if either dimension is below 2 or the lattice exceeds 64 sites
/// (mask-based simulators).
pub fn ising_2d(rows: usize, cols: usize, j: f64) -> PauliSum {
    assert!(rows >= 2 && cols >= 2, "lattice needs at least 2x2 sites");
    let n = rows * cols;
    assert!(n <= 64, "lattice capped at 64 sites");
    let mut h = PauliSum::new(n);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let mut s = PauliString::identity(n);
                s.set_pauli(idx(r, c), Pauli::X);
                s.set_pauli(idx(r, c + 1), Pauli::X);
                h.push(j, s);
            }
            if r + 1 < rows {
                let mut s = PauliString::identity(n);
                s.set_pauli(idx(r, c), Pauli::X);
                s.set_pauli(idx(r + 1, c), Pauli::X);
                h.push(j, s);
            }
            h.push(1.0, PauliString::single(n, idx(r, c), Pauli::Z));
        }
    }
    h
}

/// 2-D Heisenberg model on an open-boundary square lattice:
/// `H = Σ_{⟨ij⟩} (J X_i X_j + J Y_i Y_j + Z_i Z_j)`.
///
/// # Panics
///
/// Same conditions as [`ising_2d`].
pub fn heisenberg_2d(rows: usize, cols: usize, j: f64) -> PauliSum {
    assert!(rows >= 2 && cols >= 2, "lattice needs at least 2x2 sites");
    let n = rows * cols;
    assert!(n <= 64, "lattice capped at 64 sites");
    let mut h = PauliSum::new(n);
    let idx = |r: usize, c: usize| r * cols + c;
    let bond = |h: &mut PauliSum, a: usize, b: usize| {
        for (letter, coeff) in [(Pauli::X, j), (Pauli::Y, j), (Pauli::Z, 1.0)] {
            let mut s = PauliString::identity(n);
            s.set_pauli(a, letter);
            s.set_pauli(b, letter);
            h.push(coeff, s);
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                bond(&mut h, idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                bond(&mut h, idx(r, c), idx(r + 1, c));
            }
        }
    }
    h
}

/// The chemistry benchmarks of Section 5.1.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Molecule {
    /// Water (367 terms at 12 qubits in the paper's active space).
    H2O,
    /// The hydrogen chain H₆ (919 terms).
    H6,
    /// Lithium hydride (631 terms).
    LiH,
}

impl Molecule {
    /// All molecules, in the paper's order.
    pub const ALL: [Molecule; 3] = [Molecule::H2O, Molecule::H6, Molecule::LiH];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Molecule::H2O => "H2O",
            Molecule::H6 => "H6",
            Molecule::LiH => "LiH",
        }
    }

    /// The paper's Pauli term count for this molecule's 12-qubit
    /// Hamiltonian.
    pub fn term_count(self) -> usize {
        match self {
            Molecule::H2O => 367,
            Molecule::H6 => 919,
            Molecule::LiH => 631,
        }
    }

    /// Number of qubits (six orbitals → 12 spin-orbitals).
    pub fn num_qubits(self) -> usize {
        12
    }
}

/// The two bond lengths the paper evaluates (Ångström).
pub const BOND_LENGTHS: [f64; 2] = [1.0, 4.5];

/// Builds the synthetic molecular-structure Hamiltonian for `molecule` at
/// `bond_length` Å (see the module docs for the substitution rationale).
///
/// Deterministic: the same `(molecule, bond_length)` always produces the
/// same operator, with exactly [`Molecule::term_count`] distinct Pauli
/// terms on 12 qubits.
///
/// # Panics
///
/// Panics if `bond_length` is not positive.
pub fn molecular(molecule: Molecule, bond_length: f64) -> PauliSum {
    assert!(bond_length > 0.0, "bond length must be positive");
    let n = molecule.num_qubits();
    let target = molecule.term_count();
    let seeds = SeedSequence::new(molecule_seed(molecule))
        .derive("molecular")
        .derive_index((bond_length * 1000.0) as u64);
    let mut rng = seeds.rng();

    // Bond-length physics: stretching suppresses hopping and enhances the
    // diagonal (Coulomb/number) part — the dissociation behaviour VQE
    // benchmarks probe.
    let stretch = (-(bond_length - 1.0) / 2.0).exp(); // 1.0 → 1, 4.5 → 0.17
    let diag_scale = 0.6 + 0.4 * (1.0 - stretch);
    let hop_scale = 0.8 * stretch + 0.05;

    let mut h = PauliSum::new(n);
    let mut seen: HashSet<String> = HashSet::new();
    let push = |h: &mut PauliSum, seen: &mut HashSet<String>, c: f64, s: PauliString| {
        if seen.insert(s.to_string()) {
            h.push(c, s);
        }
    };

    // One-body number terms: Z_i.
    for i in 0..n {
        let c = diag_scale * (0.3 + 0.5 * rng.gen::<f64>());
        push(&mut h, &mut seen, c, PauliString::single(n, i, Pauli::Z));
    }
    // Coulomb ladder: all Z_i Z_j pairs.
    for i in 0..n {
        for jdx in i + 1..n {
            let c = diag_scale * (0.05 + 0.2 * rng.gen::<f64>()) / (1.0 + (jdx - i) as f64 * 0.3);
            let mut s = PauliString::identity(n);
            s.set_pauli(i, Pauli::Z);
            s.set_pauli(jdx, Pauli::Z);
            push(&mut h, &mut seen, c, s);
        }
    }
    // Hopping: XX + YY on orbital pairs (same-spin sector: stride-2 pairs
    // plus nearest neighbours).
    for i in 0..n {
        for jdx in i + 1..n {
            if jdx - i > 3 {
                continue;
            }
            let c = hop_scale * (0.1 + 0.3 * rng.gen::<f64>());
            for letter in [Pauli::X, Pauli::Y] {
                let mut s = PauliString::identity(n);
                s.set_pauli(i, letter);
                s.set_pauli(jdx, letter);
                push(&mut h, &mut seen, c, s);
            }
        }
    }
    // Exchange / two-electron strings: weight-4 XXYY-type terms until the
    // target count is reached.
    while h.num_terms() < target {
        let mut s = PauliString::identity(n);
        let mut sites: Vec<usize> = (0..n).collect();
        for k in (1..n).rev() {
            let swap_with = rng.gen_range(0..=k);
            sites.swap(k, swap_with);
        }
        // Weight 3 or 4. Exchange terms need an even number of X/Y letters
        // to be real; build patterns like X X Y Y or X Y Z with paired flips.
        let weight = 3 + rng.gen_range(0..2usize);
        let mut xy = 0;
        for (slot, &q) in sites.iter().take(weight).enumerate() {
            let letter = match slot {
                0 => Pauli::X,
                1 => {
                    xy += 1;
                    if rng.gen_bool(0.5) {
                        Pauli::X
                    } else {
                        Pauli::Y
                    }
                }
                _ => {
                    if rng.gen_bool(0.4) {
                        Pauli::Z
                    } else {
                        xy += 1;
                        Pauli::Y
                    }
                }
            };
            s.set_pauli(q, letter);
        }
        // Keep the count of Y letters even so the term is Hermitian with a
        // real coefficient (Y count parity flips the transpose sign).
        if s.y_count() % 2 == 1 {
            let q = s.support().next().unwrap();
            let flipped = match s.pauli_at(q) {
                Pauli::X => Pauli::Y,
                Pauli::Y => Pauli::X,
                other => other,
            };
            s.set_pauli(q, flipped);
        }
        if s.y_count() % 2 == 1 {
            continue; // fallback: resample
        }
        let _ = xy;
        let c = hop_scale * 0.08 * (rng.gen::<f64>() - 0.5);
        if c.abs() < 1e-4 {
            continue;
        }
        push(&mut h, &mut seen, c, s);
    }
    debug_assert_eq!(h.num_terms(), target);
    h
}

/// Stable per-molecule root seed (ASCII of the formula).
fn molecule_seed(m: Molecule) -> u64 {
    match m {
        Molecule::H2O => 0x4832_4f00,
        Molecule::H6 => 0x4836_0000,
        Molecule::LiH => 0x4c69_4800,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ising_structure() {
        let h = ising_1d(6, 0.25);
        assert_eq!(h.num_terms(), 5 + 6);
        assert_eq!(h.num_qubits(), 6);
        // Ground energy below the trivial |0…0⟩ energy (= -n + coupling⟨XX⟩=0 →
        // ⟨H⟩(|0⟩^n) = n? Z|0⟩ = +|0⟩ so E(|0..0⟩) = n — ground is far below).
        let e0 = h.ground_energy_default().unwrap();
        assert!(e0 < -5.9, "{e0}");
    }

    #[test]
    fn heisenberg_structure() {
        let h = heisenberg_1d(5, 1.0);
        assert_eq!(h.num_terms(), 3 * 4);
        // Isotropic antiferromagnet ground energy per bond < -1.
        let e0 = h.ground_energy_default().unwrap();
        assert!(e0 < -4.0, "{e0}");
    }

    #[test]
    fn heisenberg_two_sites_analytic() {
        // J = 1: singlet energy −3.
        let h = heisenberg_1d(2, 1.0);
        let e0 = h.ground_energy_default().unwrap();
        assert!((e0 + 3.0).abs() < 1e-8);
    }

    #[test]
    fn molecular_term_counts_match_paper() {
        for m in Molecule::ALL {
            let h = molecular(m, 1.0);
            assert_eq!(h.num_terms(), m.term_count(), "{}", m.name());
            assert_eq!(h.num_qubits(), 12);
        }
    }

    #[test]
    fn molecular_is_deterministic() {
        let a = molecular(Molecule::LiH, 4.5);
        let b = molecular(Molecule::LiH, 4.5);
        assert_eq!(a, b);
    }

    #[test]
    fn molecular_bond_lengths_differ() {
        let short = molecular(Molecule::H2O, 1.0);
        let long = molecular(Molecule::H2O, 4.5);
        assert_ne!(short, long);
        assert_eq!(short.num_terms(), long.num_terms());
    }

    #[test]
    fn molecular_terms_are_hermitian_real() {
        // Every stored string must have an even Y count (real matrix
        // elements) — the generator enforces this.
        let h = molecular(Molecule::H6, 1.0);
        for t in h.terms() {
            assert_eq!(t.string.y_count() % 2, 0, "{}", t.string);
            assert!(t.coefficient.is_finite());
        }
    }

    #[test]
    fn molecular_ground_energy_exists() {
        // Lanczos runs on the 12-qubit operator and returns a finite
        // energy below the max.
        let h = molecular(Molecule::LiH, 1.0);
        let e0 = h.ground_energy_default().unwrap();
        assert!(e0.is_finite());
        assert!(e0 < 0.0, "{e0}");
    }

    #[test]
    fn ising_2d_structure() {
        // 3x3 lattice: 12 bonds + 9 fields.
        let h = ising_2d(3, 3, 0.5);
        assert_eq!(h.num_qubits(), 9);
        assert_eq!(h.num_terms(), 12 + 9);
        // 2x2 ground energy is below the product-state value of 4... the
        // trivial |0000⟩ has energy +4 (all Z up); ground is far below.
        let small = ising_2d(2, 2, 1.0);
        let e0 = small.ground_energy_default().unwrap();
        assert!(e0 < -4.0, "{e0}");
    }

    #[test]
    fn heisenberg_2d_matches_1d_on_a_strip() {
        // A 2xN strip has the ladder bonds; a degenerate check: 2x2 has 4
        // bonds x 3 letters = 12 terms.
        let h = heisenberg_2d(2, 2, 1.0);
        assert_eq!(h.num_terms(), 12);
        let e0 = h.ground_energy_default().unwrap();
        // 2x2 Heisenberg plaquette ground energy: -8 for the isotropic
        // model with our normalization... just require a bound.
        assert!(e0 < -4.0, "{e0}");
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn lattice_rejects_chains() {
        let _ = ising_2d(1, 5, 1.0);
    }

    #[test]
    fn coupling_constants_exposed() {
        assert_eq!(COUPLINGS, [0.25, 0.5, 1.0]);
        assert_eq!(BOND_LENGTHS, [1.0, 4.5]);
    }
}
