//! Figure-level experiment drivers (consumed by the bench harness).
//!
//! Each driver returns serializable rows that the corresponding
//! `eftq_bench` binary prints in the paper's table/series format, so the
//! benches stay thin and the logic stays testable here.

use crate::fidelity::{
    conventional_fidelity, conventional_fidelity_best_factory, cultivation_fidelity, pqec_fidelity,
    Workload,
};
use eftq_qec::{DeviceModel, FactoryConfig, FACTORY_CATALOG};
use serde::{Deserialize, Serialize};

/// One Figure-4 point: pQEC vs qec-conventional at a qubit count and
/// factory configuration on the 10k-qubit device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Logical qubits of the FCHE (p = 1) workload.
    pub qubits: usize,
    /// Factory name.
    pub factory: &'static str,
    /// pQEC iteration fidelity.
    pub pqec: f64,
    /// qec-conventional iteration fidelity (0 when infeasible).
    pub conventional: f64,
    /// Relative fidelity improvement `f_pQEC / f_conv`.
    pub improvement: f64,
}

/// Figure 4: the 12–24-qubit sweep over the four factory configurations.
pub fn fig4_rows() -> Vec<Fig4Row> {
    let device = DeviceModel::eft_default();
    let mut rows = Vec::new();
    for n in (12..=24).step_by(4) {
        let w = Workload::fche(n, 1);
        let pqec = pqec_fidelity(&w, &device).expect("EFT device hosts 12-24 qubits");
        for factory in &FACTORY_CATALOG {
            let conv = conventional_fidelity(&w, &device, factory)
                .map_or(crate::fidelity::FIDELITY_FLOOR, |c| c.fidelity);
            rows.push(Fig4Row {
                qubits: n,
                factory: factory.name,
                pqec: pqec.fidelity,
                conventional: conv,
                improvement: pqec.fidelity / conv,
            });
        }
    }
    rows
}

/// One Figure-5 cell: win percentage of pQEC over qec-conventional for a
/// (device size, program size) pair.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig5Cell {
    /// Device physical qubits.
    pub device_qubits: usize,
    /// Program logical qubits.
    pub logical_qubits: usize,
    /// Whether the program fits at d = 11 (white squares when false).
    pub feasible: bool,
    /// Fraction of the workload ensemble where pQEC wins (0..=1).
    pub pqec_win_fraction: f64,
}

/// Figure 5: win percentage across device sizes and program sizes. The
/// workload ensemble varies ansatz family (linear / FCHE / blocked where
/// the size allows) and depth 1..=4; qec-conventional picks its best
/// factory per workload.
pub fn fig5_grid(device_sizes: &[usize], program_sizes: &[usize]) -> Vec<Fig5Cell> {
    let mut cells = Vec::new();
    for &dq in device_sizes {
        let device = DeviceModel::new(dq, 1e-3);
        for &n in program_sizes {
            // The paper's Figure-5 feasibility rule: white when the
            // program's *data patches* at d = 11 exceed the device.
            let feasible = n * (2 * 11 * 11 - 1) <= dq;
            let mut wins = 0usize;
            let mut total = 0usize;
            if feasible {
                for depth in 1..=4 {
                    let mut workloads = vec![Workload::linear(n, depth), Workload::fche(n, depth)];
                    if eftq_circuit::ansatz::blocked_block_parameter(n).is_some() {
                        workloads.push(Workload::blocked(n, depth));
                    }
                    for w in workloads {
                        let Some(pqec) = pqec_fidelity(&w, &device) else {
                            continue;
                        };
                        let conv = conventional_fidelity_best_factory(&w, &device)
                            .map_or(0.0, |c| c.fidelity);
                        total += 1;
                        if pqec.fidelity > conv {
                            wins += 1;
                        }
                    }
                }
            }
            cells.push(Fig5Cell {
                device_qubits: dq,
                logical_qubits: n,
                feasible: feasible && total > 0,
                pqec_win_fraction: if total > 0 {
                    wins as f64 / total as f64
                } else {
                    0.0
                },
            });
        }
    }
    cells
}

/// One Figure-6 point: pQEC vs qec-cultivation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Device physical qubits (10k or 20k in the paper).
    pub device_qubits: usize,
    /// Program logical qubits.
    pub logical_qubits: usize,
    /// `f_pQEC / f_cultivation`.
    pub improvement: f64,
}

/// Figure 6: the 10–70-logical-qubit sweep at 10k and 20k physical qubits.
pub fn fig6_rows(device_sizes: &[usize], program_sizes: &[usize]) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for &dq in device_sizes {
        let device = DeviceModel::new(dq, 1e-3);
        for &n in program_sizes {
            let w = Workload::fche(n, 1);
            let Some(pqec) = pqec_fidelity(&w, &device) else {
                continue;
            };
            let cult = cultivation_fidelity(&w, &device)
                .map_or(crate::fidelity::FIDELITY_FLOOR, |c| c.fidelity);
            rows.push(Fig6Row {
                device_qubits: dq,
                logical_qubits: n,
                improvement: pqec.fidelity / cult,
            });
        }
    }
    rows
}

/// Per-factory detail used by the Figure-4 bench narration.
pub fn factory_detail(
    w: &Workload,
    device: &DeviceModel,
    factory: &FactoryConfig,
) -> Option<crate::fidelity::CliffordTReport> {
    conventional_fidelity(w, device, factory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_rows_cover_sweep() {
        let rows = fig4_rows();
        assert_eq!(rows.len(), 4 * 4); // 4 sizes × 4 factories
        for r in &rows {
            assert!(
                r.improvement >= 0.999,
                "pQEC must not lose: {} at n = {}, {}",
                r.improvement,
                r.qubits,
                r.factory
            );
        }
    }

    #[test]
    fn fig4_average_improvement_is_substantial() {
        let rows = fig4_rows();
        let ratios: Vec<f64> = rows.iter().map(|r| r.improvement).collect();
        let geo = eftq_numerics::stats::geometric_mean(&ratios);
        // The paper's Figure-4 improvements span 1–250×; our model's
        // geometric mean lands comfortably above 1.
        assert!(geo > 1.5, "{geo}");
    }

    #[test]
    fn fig5_has_white_and_contested_cells() {
        let cells = fig5_grid(&[10_000, 60_000], &[12, 40, 80]);
        // 80 logical qubits do not fit a 10k device at d = 11.
        let white = cells
            .iter()
            .find(|c| c.device_qubits == 10_000 && c.logical_qubits == 80)
            .unwrap();
        assert!(!white.feasible);
        // Small program on the big device: conventional wins most of the
        // ensemble.
        let conv_zone = cells
            .iter()
            .find(|c| c.device_qubits == 60_000 && c.logical_qubits == 12)
            .unwrap();
        assert!(conv_zone.feasible);
        assert!(
            conv_zone.pqec_win_fraction < 0.5,
            "{}",
            conv_zone.pqec_win_fraction
        );
        // Frontier program on the small device: pQEC wins.
        let pqec_zone = cells
            .iter()
            .find(|c| c.device_qubits == 10_000 && c.logical_qubits == 40)
            .unwrap();
        assert!(pqec_zone.feasible);
        assert!(
            pqec_zone.pqec_win_fraction > 0.5,
            "{}",
            pqec_zone.pqec_win_fraction
        );
    }

    #[test]
    fn fig6_crossover_with_logical_qubits() {
        let rows = fig6_rows(&[10_000], &[12, 24, 40, 60]);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        // Cultivation wins small (ratio < 1), pQEC wins large (ratio > 1).
        assert!(first.improvement < 1.0, "{}", first.improvement);
        assert!(last.improvement > 1.0, "{}", last.improvement);
        // The advantage grows from the small-program to the mid-size
        // regime (it may saturate/fluctuate once both fidelities floor).
        let r12 = rows.iter().find(|r| r.logical_qubits == 12).unwrap();
        let r24 = rows.iter().find(|r| r.logical_qubits == 24).unwrap();
        assert!(r24.improvement > r12.improvement);
    }

    #[test]
    fn fig6_more_space_helps_cultivation() {
        let rows10 = fig6_rows(&[10_000], &[24]);
        let rows20 = fig6_rows(&[20_000], &[24]);
        // On the bigger device cultivation has more units, so pQEC's
        // relative advantage shrinks.
        assert!(rows20[0].improvement <= rows10[0].improvement + 1e-9);
    }
}
