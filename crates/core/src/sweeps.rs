//! Figure-level experiment drivers (consumed by the bench harness).
//!
//! Every figure/table artifact is a **sweep driver**: it exposes a
//! declarative [`eftq_sweep::SweepSpec`] (the point grid) plus a pure
//! per-point evaluator returning an [`eftq_sweep::Row`], and the
//! binaries are thin CLI wrappers that hand both to
//! [`eftq_sweep::run_sweep`] for work-stealing parallelism, JSONL
//! checkpoints/resume, `--shard k/N` partitioning, shard merging, and
//! farm mode (`--farm` coordinates, `--worker` joins). Because each
//! evaluator is a pure function of its point and derived seed, a driver
//! needs no farm awareness at all: the same closure runs locally, in a
//! shard, or on a leased batch shipped over TCP, and the artifact bytes
//! come out identical.
//! Drivers share compiled artifacts (ansatz structures,
//! [`eftq_stabilizer::NoiseTemplate`]s keyed by
//! [`NoiseTemplate::cache_key`], Figure-11 fidelity curves) across
//! points through [`eftq_sweep::ArtifactCache`]s, so a grid never
//! recompiles what a neighbouring point already built. The grids
//! reproduce the historical binaries' nested-loop orders exactly —
//! golden JSONL artifacts depend on it. The typed per-figure row structs
//! ([`Fig4Row`], [`Fig5Cell`], [`Fig6Row`]) and their batch helpers
//! remain for library consumers that want values rather than rows.

use crate::clifford_vqe::{
    clifford_vqe_with_template, genome_energy, reevaluate_genome, CliffordVqeConfig,
};
use crate::crossover::{blocked_crossover_qubits, fig11_curves, CrossoverPoint};
use crate::fidelity::{
    conventional_fidelity, conventional_fidelity_best_factory, cultivation_fidelity, pqec_fidelity,
    Workload,
};
use crate::hamiltonians::{heisenberg_1d, ising_1d, molecular, Molecule, BOND_LENGTHS, COUPLINGS};
use crate::regimes::ExecutionRegime;
use crate::relative_improvement;
use crate::vqe::{run_vqe, VqeConfig};
use crate::zne::{energy_at_scale, zne_energy};
use eftq_circuit::ansatz::{blocked_all_to_all, fully_connected_hea};
use eftq_circuit::{Ansatz, AnsatzKind};
use eftq_layout::layouts::{LayoutKind, LayoutModel};
use eftq_layout::schedule::{schedule_ansatz, spacetime_ratio, ScheduleConfig};
use eftq_layout::shuffling::{naive_backup_volume, patch_shuffling_volume};
use eftq_optim::GeneticConfig;
use eftq_pauli::PauliSum;
use eftq_qec::{DeviceModel, FactoryConfig, InjectionModel, FACTORY_CATALOG};
use eftq_stabilizer::{NoiseTemplate, StabilizerNoise};
use eftq_sweep::{ArtifactCache, Row, SweepPoint, SweepSpec};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One Figure-4 point: pQEC vs qec-conventional at a qubit count and
/// factory configuration on the 10k-qubit device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Logical qubits of the FCHE (p = 1) workload.
    pub qubits: usize,
    /// Factory name.
    pub factory: &'static str,
    /// pQEC iteration fidelity.
    pub pqec: f64,
    /// qec-conventional iteration fidelity (0 when infeasible).
    pub conventional: f64,
    /// Relative fidelity improvement `f_pQEC / f_conv`.
    pub improvement: f64,
}

/// Figure 4: the 12–24-qubit sweep over the four factory configurations.
pub fn fig4_rows() -> Vec<Fig4Row> {
    let device = DeviceModel::eft_default();
    let mut rows = Vec::new();
    for n in (12..=24).step_by(4) {
        let w = Workload::fche(n, 1);
        let pqec = pqec_fidelity(&w, &device).expect("EFT device hosts 12-24 qubits");
        for factory in &FACTORY_CATALOG {
            let conv = conventional_fidelity(&w, &device, factory)
                .map_or(crate::fidelity::FIDELITY_FLOOR, |c| c.fidelity);
            rows.push(Fig4Row {
                qubits: n,
                factory: factory.name,
                pqec: pqec.fidelity,
                conventional: conv,
                improvement: pqec.fidelity / conv,
            });
        }
    }
    rows
}

/// One Figure-5 cell: win percentage of pQEC over qec-conventional for a
/// (device size, program size) pair.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig5Cell {
    /// Device physical qubits.
    pub device_qubits: usize,
    /// Program logical qubits.
    pub logical_qubits: usize,
    /// Whether the program fits at d = 11 (white squares when false).
    pub feasible: bool,
    /// Fraction of the workload ensemble where pQEC wins (0..=1).
    pub pqec_win_fraction: f64,
}

/// Figure 5: win percentage across device sizes and program sizes. The
/// workload ensemble varies ansatz family (linear / FCHE / blocked where
/// the size allows) and depth 1..=4; qec-conventional picks its best
/// factory per workload.
pub fn fig5_grid(device_sizes: &[usize], program_sizes: &[usize]) -> Vec<Fig5Cell> {
    let mut cells = Vec::new();
    for &dq in device_sizes {
        for &n in program_sizes {
            cells.push(fig5_cell(dq, n));
        }
    }
    cells
}

/// One Figure-5 cell: pQEC's win fraction over the workload ensemble for
/// a (device size, program size) pair.
pub fn fig5_cell(device_qubits: usize, logical_qubits: usize) -> Fig5Cell {
    let (dq, n) = (device_qubits, logical_qubits);
    let device = DeviceModel::new(dq, 1e-3);
    // The paper's Figure-5 feasibility rule: white when the
    // program's *data patches* at d = 11 exceed the device.
    let feasible = n * (2 * 11 * 11 - 1) <= dq;
    let mut wins = 0usize;
    let mut total = 0usize;
    if feasible {
        for depth in 1..=4 {
            let mut workloads = vec![Workload::linear(n, depth), Workload::fche(n, depth)];
            if eftq_circuit::ansatz::blocked_block_parameter(n).is_some() {
                workloads.push(Workload::blocked(n, depth));
            }
            for w in workloads {
                let Some(pqec) = pqec_fidelity(&w, &device) else {
                    continue;
                };
                let conv =
                    conventional_fidelity_best_factory(&w, &device).map_or(0.0, |c| c.fidelity);
                total += 1;
                if pqec.fidelity > conv {
                    wins += 1;
                }
            }
        }
    }
    Fig5Cell {
        device_qubits: dq,
        logical_qubits: n,
        feasible: feasible && total > 0,
        pqec_win_fraction: if total > 0 {
            wins as f64 / total as f64
        } else {
            0.0
        },
    }
}

/// One Figure-6 point: pQEC vs qec-cultivation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Device physical qubits (10k or 20k in the paper).
    pub device_qubits: usize,
    /// Program logical qubits.
    pub logical_qubits: usize,
    /// `f_pQEC / f_cultivation`.
    pub improvement: f64,
}

/// Figure 6: the 10–70-logical-qubit sweep at 10k and 20k physical qubits.
pub fn fig6_rows(device_sizes: &[usize], program_sizes: &[usize]) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for &dq in device_sizes {
        let device = DeviceModel::new(dq, 1e-3);
        for &n in program_sizes {
            let w = Workload::fche(n, 1);
            let Some(pqec) = pqec_fidelity(&w, &device) else {
                continue;
            };
            let cult = cultivation_fidelity(&w, &device)
                .map_or(crate::fidelity::FIDELITY_FLOOR, |c| c.fidelity);
            rows.push(Fig6Row {
                device_qubits: dq,
                logical_qubits: n,
                improvement: pqec.fidelity / cult,
            });
        }
    }
    rows
}

/// Per-factory detail used by the Figure-4 bench narration.
pub fn factory_detail(
    w: &Workload,
    device: &DeviceModel,
    factory: &FactoryConfig,
) -> Option<crate::fidelity::CliffordTReport> {
    conventional_fidelity(w, device, factory)
}

// ---------------------------------------------------------------------
// Sweep-engine drivers (Figures 12/13/14, Table 1)
// ---------------------------------------------------------------------

/// The artifact configuration stamp: grids and budgets differ between
/// the reduced default and `EFT_FULL=1`, so their checkpoints must never
/// cross-resume even where axis values coincide.
fn scale_tag(full_scale: bool) -> &'static str {
    if full_scale {
        "full"
    } else {
        "reduced"
    }
}

/// The Figure-12 paper-scale qubit ladder (`EFT_FULL=1`) and its reduced
/// default.
fn clifford_sizes(full_scale: bool, full: &[i64], reduced: &[i64]) -> Vec<i64> {
    if full_scale { full } else { reduced }.to_vec()
}

/// The shared GA configuration of the Clifford-VQE figures (12 and 14):
/// a small search budget by default, the paper-scale budget under
/// `EFT_FULL=1`.
fn clifford_figure_config(full_scale: bool) -> CliffordVqeConfig {
    CliffordVqeConfig {
        ga: GeneticConfig {
            population: if full_scale { 32 } else { 16 },
            generations: if full_scale { 40 } else { 16 },
            threads: 4,
            ..GeneticConfig::default()
        },
        shots: if full_scale { 16 } else { 6 },
        ..CliffordVqeConfig::default()
    }
}

fn model_hamiltonian(model: &str, n: usize, j: f64) -> PauliSum {
    match model {
        "Ising" => ising_1d(n, j),
        "Heisenberg" => heisenberg_1d(n, j),
        other => panic!("unknown model '{other}'"),
    }
}

/// Shared per-sweep compilation state for the Clifford-VQE drivers:
/// ansatz structures per qubit count and [`NoiseTemplate`]s per
/// (circuit, noise), both safe to share across worker threads.
struct CliffordArtifacts {
    ansatze: ArtifactCache<(AnsatzKind, usize), Ansatz>,
    templates: ArtifactCache<u64, NoiseTemplate>,
}

impl CliffordArtifacts {
    fn new() -> Self {
        CliffordArtifacts {
            ansatze: ArtifactCache::new(),
            templates: ArtifactCache::new(),
        }
    }

    fn ansatz(&self, kind: AnsatzKind, n: usize) -> Arc<Ansatz> {
        self.ansatze.get_or_build((kind, n), || match kind {
            AnsatzKind::FullyConnectedHea => fully_connected_hea(n, 1),
            AnsatzKind::BlockedAllToAll => blocked_all_to_all(n, 1),
            other => panic!("no sweep ansatz builder for {other:?}"),
        })
    }

    fn template(&self, ansatz: &Ansatz, noise: &StabilizerNoise) -> Arc<NoiseTemplate> {
        self.templates
            .get_or_build(NoiseTemplate::cache_key(ansatz.circuit(), noise), || {
                NoiseTemplate::compile(ansatz.circuit(), noise)
            })
    }

    /// Appends both caches' hit/miss counts to a summary row.
    fn append_cache_stats(&self, row: Row) -> Row {
        row.int("ansatz_cache_hits", self.ansatze.hits() as i64)
            .int("ansatz_cache_misses", self.ansatze.misses() as i64)
            .int("template_cache_hits", self.templates.hits() as i64)
            .int("template_cache_misses", self.templates.misses() as i64)
    }

    /// The lowest *noiseless* search energy — `noiseless_reference_energy`
    /// through the shared template cache.
    fn noiseless_reference(
        &self,
        ansatz: &Ansatz,
        h: &PauliSum,
        config: &CliffordVqeConfig,
    ) -> f64 {
        let template = self.template(ansatz, &StabilizerNoise::noiseless());
        clifford_vqe_with_template(ansatz, h, &template, config).best_energy
    }
}

/// Figure 12 as a sweep: γ(pQEC/NISQ) from the genetic Clifford VQE over
/// (model, qubits, J) — the grid behind `fig12_gamma_large_scale`.
pub struct Fig12Driver {
    config: CliffordVqeConfig,
    artifacts: CliffordArtifacts,
}

impl Fig12Driver {
    /// The point grid: model × qubit ladder × coupling.
    pub fn spec(full_scale: bool) -> SweepSpec {
        SweepSpec::new("fig12")
            .with_config(scale_tag(full_scale))
            .axis_strs("model", ["Ising", "Heisenberg"])
            .axis_ints(
                "qubits",
                clifford_sizes(full_scale, &[16, 24, 32, 48, 64, 100], &[16, 24, 32]),
            )
            .axis_nums("j", COUPLINGS)
    }

    /// A driver with the binary's reduced/full configuration.
    pub fn new(full_scale: bool) -> Self {
        Fig12Driver {
            config: clifford_figure_config(full_scale),
            artifacts: CliffordArtifacts::new(),
        }
    }

    /// The GA/shot configuration the points run under.
    pub fn config(&self) -> &CliffordVqeConfig {
        &self.config
    }

    /// Appends the ansatz/template cache hit/miss counts to a summary
    /// row.
    pub fn append_cache_stats(&self, row: Row) -> Row {
        self.artifacts.append_cache_stats(row)
    }

    /// Evaluates one grid point. Pure function of the point (the VQE
    /// seeds live in the config), so rows are identical at any thread
    /// count and across resumes.
    pub fn eval(&self, point: &SweepPoint) -> Row {
        let n = point.int("qubits") as usize;
        let j = point.num("j");
        let model = point.str("model");
        let h = model_hamiltonian(model, n, j);
        let ansatz = self.artifacts.ansatz(AnsatzKind::FullyConnectedHea, n);
        let config = &self.config;
        let pqec_noise = ExecutionRegime::pqec_default().stabilizer_noise();
        let nisq_noise = ExecutionRegime::nisq_default().stabilizer_noise();
        let pqec = clifford_vqe_with_template(
            &ansatz,
            &h,
            &self.artifacts.template(&ansatz, &pqec_noise),
            config,
        );
        let nisq = clifford_vqe_with_template(
            &ansatz,
            &h,
            &self.artifacts.template(&ansatz, &nisq_noise),
            config,
        );
        // Unbiased re-evaluation of both winners (the few-shot search
        // estimate is optimistically biased).
        let reeval_shots = 8 * config.shots;
        let e_pqec = reevaluate_genome(
            &ansatz,
            &h,
            &pqec_noise,
            &pqec.best_genome,
            reeval_shots,
            17,
            config.ga.threads,
        );
        let e_nisq = reevaluate_genome(
            &ansatz,
            &h,
            &nisq_noise,
            &nisq.best_genome,
            reeval_shots,
            17,
            config.ga.threads,
        );
        // E0: lowest noiseless stabilizer energy seen anywhere.
        let e0 = self
            .artifacts
            .noiseless_reference(&ansatz, &h, config)
            .min(genome_energy(&ansatz, &h, &pqec.best_genome))
            .min(genome_energy(&ansatz, &h, &nisq.best_genome));
        let gamma = relative_improvement(e0, e_pqec, e_nisq);
        Row::new("fig12")
            .str("model", model)
            .int("qubits", n as i64)
            .num("j", j)
            .num("e0", e0)
            .num("e_pqec", e_pqec)
            .num("e_nisq", e_nisq)
            .num("gamma", gamma)
    }
}

/// Figure 14 as a sweep: γ(blocked_all_to_all / FCHE) under pQEC plus
/// the noiseless expressibility ratio, over (model, qubits, J).
pub struct Fig14Driver {
    config: CliffordVqeConfig,
    artifacts: CliffordArtifacts,
}

impl Fig14Driver {
    /// The point grid: model × qubit ladder × coupling.
    pub fn spec(full_scale: bool) -> SweepSpec {
        SweepSpec::new("fig14")
            .with_config(scale_tag(full_scale))
            .axis_strs("model", ["Ising", "Heisenberg"])
            .axis_ints(
                "qubits",
                clifford_sizes(full_scale, &[16, 24, 32, 48], &[16, 24]),
            )
            .axis_nums("j", COUPLINGS)
    }

    /// A driver with the binary's reduced/full configuration.
    pub fn new(full_scale: bool) -> Self {
        Fig14Driver {
            config: clifford_figure_config(full_scale),
            artifacts: CliffordArtifacts::new(),
        }
    }

    /// Appends the ansatz/template cache hit/miss counts to a summary
    /// row.
    pub fn append_cache_stats(&self, row: Row) -> Row {
        self.artifacts.append_cache_stats(row)
    }

    /// Evaluates one grid point (pure function of the point).
    pub fn eval(&self, point: &SweepPoint) -> Row {
        let n = point.int("qubits") as usize;
        let j = point.num("j");
        let model = point.str("model");
        let h = model_hamiltonian(model, n, j);
        let config = &self.config;
        let regime = ExecutionRegime::pqec_default();
        let noise = regime.stabilizer_noise();
        let blocked = self.artifacts.ansatz(AnsatzKind::BlockedAllToAll, n);
        let fche = self.artifacts.ansatz(AnsatzKind::FullyConnectedHea, n);
        // One noiseless GA per ansatz: e0 and the expressibility ratio
        // below share these values.
        let if_ = self.artifacts.noiseless_reference(&fche, &h, config);
        let ib = self.artifacts.noiseless_reference(&blocked, &h, config);
        let e0 = if_.min(ib);
        let eb_run = clifford_vqe_with_template(
            &blocked,
            &h,
            &self.artifacts.template(&blocked, &noise),
            config,
        );
        let ef_run =
            clifford_vqe_with_template(&fche, &h, &self.artifacts.template(&fche, &noise), config);
        let reeval_shots = 8 * config.shots;
        let eb = reevaluate_genome(
            &blocked,
            &h,
            &noise,
            &eb_run.best_genome,
            reeval_shots,
            23,
            config.ga.threads,
        );
        let ef = reevaluate_genome(
            &fche,
            &h,
            &noise,
            &ef_run.best_genome,
            reeval_shots,
            23,
            config.ga.threads,
        );
        let e0 = e0
            .min(genome_energy(&blocked, &h, &eb_run.best_genome))
            .min(genome_energy(&fche, &h, &ef_run.best_genome));
        let gamma = relative_improvement(e0, eb, ef);
        // Expressibility: noiseless converged energies ratio.
        let ideal_ratio = if if_.abs() > 1e-9 { ib / if_ } else { 1.0 };
        Row::new("fig14")
            .str("model", model)
            .int("qubits", n as i64)
            .num("j", j)
            .num("e0", e0)
            .num("e_blocked", eb)
            .num("e_fche", ef)
            .num("gamma", gamma)
            .num("ideal_ratio", ideal_ratio)
    }
}

/// Figure 13 as two sweeps: γ(pQEC/NISQ) from the density-matrix VQE for
/// the physics models (Ising/Heisenberg × J), plus the `EFT_FULL=1`
/// chemistry grid (molecule × bond length).
pub struct Fig13Driver {
    config: VqeConfig,
    qubits: usize,
}

impl Fig13Driver {
    /// The physics grid: model × coupling (at the reduced 6-qubit or
    /// paper 8-qubit size, carried by the driver).
    pub fn spec(full_scale: bool) -> SweepSpec {
        SweepSpec::new("fig13")
            .with_config(scale_tag(full_scale))
            .axis_nums("j", COUPLINGS)
            .axis_strs("model", ["Ising", "Heisenberg"])
    }

    /// The chemistry grid (paper-scale only): molecule × bond length.
    pub fn chem_spec() -> SweepSpec {
        SweepSpec::new("fig13_chem")
            .with_config(scale_tag(true))
            .axis_strs("molecule", Molecule::ALL.map(|m| m.name()))
            .axis_nums("bond_length", BOND_LENGTHS)
    }

    /// A driver with the binary's reduced/full configuration.
    pub fn new(full_scale: bool) -> Self {
        Fig13Driver {
            config: VqeConfig {
                max_iters: if full_scale { 400 } else { 300 },
                restarts: if full_scale { 3 } else { 2 },
                ..VqeConfig::default()
            },
            qubits: if full_scale { 8 } else { 6 },
        }
    }

    fn gamma_row(&self, row: Row, label: &str, h: &PauliSum) -> Row {
        let n = h.num_qubits();
        let ansatz = fully_connected_hea(n, 1);
        let e0 = h.ground_energy_default().expect("lanczos");
        let pqec = run_vqe(&ansatz, h, &ExecutionRegime::pqec_default(), &self.config);
        let nisq = run_vqe(&ansatz, h, &ExecutionRegime::nisq_default(), &self.config);
        let gamma = relative_improvement(e0, pqec.best_energy, nisq.best_energy);
        row.str("benchmark", label)
            .int("n", n as i64)
            .num("e0", e0)
            .num("e_pqec", pqec.best_energy)
            .num("e_nisq", nisq.best_energy)
            .num("gamma", gamma)
    }

    /// Evaluates one physics point (pure function of the point).
    pub fn eval(&self, point: &SweepPoint) -> Row {
        let j = point.num("j");
        let model = point.str("model");
        let n = self.qubits;
        let h = model_hamiltonian(model, n, j);
        let row = Row::new("fig13").str("model", model).num("j", j);
        self.gamma_row(row, &format!("{model}-{n} J={j}"), &h)
    }

    /// Evaluates one chemistry point (pure function of the point).
    pub fn eval_chem(&self, point: &SweepPoint) -> Row {
        let name = point.str("molecule");
        let l = point.num("bond_length");
        let m = Molecule::ALL
            .into_iter()
            .find(|m| m.name() == name)
            .unwrap_or_else(|| panic!("unknown molecule '{name}'"));
        let h = molecular(m, l);
        let row = Row::new("fig13_chem")
            .str("molecule", name)
            .num("bond_length", l);
        self.gamma_row(row, &format!("{name}-12 l={l}A"), &h)
    }
}

/// Table 1 as a sweep: mean spacetime-volume ratio of each baseline
/// layout to the proposed layout, per ansatz family, averaged over the
/// paper's 8..=164 qubit ladder.
pub struct Table1Driver;

impl Table1Driver {
    /// The point grid: baseline layout × ansatz family.
    pub fn spec() -> SweepSpec {
        SweepSpec::new("table1")
            .axis_strs(
                "layout",
                [
                    LayoutKind::Compact,
                    LayoutKind::Intermediate,
                    LayoutKind::Fast,
                    LayoutKind::Grid,
                ]
                .map(|l| l.name()),
            )
            .axis_strs(
                "ansatz",
                [
                    AnsatzKind::LinearHea,
                    AnsatzKind::FullyConnectedHea,
                    AnsatzKind::BlockedAllToAll,
                ]
                .map(|k| k.name()),
            )
    }

    /// Evaluates one (layout, ansatz) cell (pure function of the point).
    pub fn eval(point: &SweepPoint) -> Row {
        let baseline = match point.str("layout") {
            "Compact" => LayoutKind::Compact,
            "Intermediate" => LayoutKind::Intermediate,
            "Fast" => LayoutKind::Fast,
            "Grid" => LayoutKind::Grid,
            other => panic!("unknown layout '{other}'"),
        };
        let kind = match point.str("ansatz") {
            "linear" => AnsatzKind::LinearHea,
            "fully_connected" => AnsatzKind::FullyConnectedHea,
            "blocked_all_to_all" => AnsatzKind::BlockedAllToAll,
            other => panic!("unknown ansatz '{other}'"),
        };
        let ratios: Vec<f64> = (8..=164)
            .step_by(4)
            .map(|n| spacetime_ratio(kind, n, 1, baseline))
            .collect();
        let mean = eftq_numerics::stats::mean(&ratios);
        Row::new("table1")
            .str("layout", baseline.name())
            .str("ansatz", kind.name())
            .num("mean_ratio", mean)
    }
}

/// The [`ExecutionRegime`] named by a categorical sweep axis.
fn regime_by_name(name: &str) -> ExecutionRegime {
    match name {
        "NISQ" => ExecutionRegime::nisq_default(),
        "pQEC" => ExecutionRegime::pqec_default(),
        other => panic!("unknown regime '{other}'"),
    }
}

/// Figure 4 as a sweep: pQEC vs qec-conventional over
/// (qubits, factory) on the 10k-qubit EFT device.
pub struct Fig4Driver;

impl Fig4Driver {
    /// The point grid: 12–24 qubit FCHE workloads × the factory catalog.
    pub fn spec() -> SweepSpec {
        SweepSpec::new("fig04")
            .axis_ints("qubits", (12..=24).step_by(4).map(|n| n as i64))
            .axis_strs("factory", FACTORY_CATALOG.map(|f| f.name))
    }

    /// Evaluates one (qubits, factory) point (pure function of the point).
    pub fn eval(point: &SweepPoint) -> Row {
        let n = point.int("qubits") as usize;
        let device = DeviceModel::eft_default();
        let w = Workload::fche(n, 1);
        let pqec = pqec_fidelity(&w, &device).expect("EFT device hosts 12-24 qubits");
        let factory = FACTORY_CATALOG
            .iter()
            .find(|f| f.name == point.str("factory"))
            .expect("factory axis values come from the catalog");
        let conv = conventional_fidelity(&w, &device, factory)
            .map_or(crate::fidelity::FIDELITY_FLOOR, |c| c.fidelity);
        Row::new("fig04")
            .int("qubits", n as i64)
            .str("factory", factory.name)
            .num("pqec", pqec.fidelity)
            .num("conventional", conv)
            .num("improvement", pqec.fidelity / conv)
    }
}

/// Figure 5 as a sweep: pQEC win percentage over
/// (device size, program size).
pub struct Fig5Driver;

impl Fig5Driver {
    /// The device-size ladder (10k–60k physical qubits).
    pub fn device_sizes() -> Vec<usize> {
        (10..=60).step_by(10).map(|k| k * 1000).collect()
    }

    /// The program-size ladder: every tenth size at paper scale, a
    /// representative subset by default.
    pub fn program_sizes(full_scale: bool) -> Vec<usize> {
        if full_scale {
            (10..=240).step_by(10).collect()
        } else {
            vec![12, 20, 28, 40, 60, 80, 120, 160, 200, 240]
        }
    }

    /// The point grid: device sizes × program sizes.
    pub fn spec(full_scale: bool) -> SweepSpec {
        SweepSpec::new("fig05")
            .with_config(scale_tag(full_scale))
            .axis_ints(
                "device_qubits",
                Self::device_sizes().into_iter().map(|n| n as i64),
            )
            .axis_ints(
                "logical_qubits",
                Self::program_sizes(full_scale)
                    .into_iter()
                    .map(|n| n as i64),
            )
    }

    /// Evaluates one grid cell (pure function of the point).
    pub fn eval(point: &SweepPoint) -> Row {
        let cell = fig5_cell(
            point.int("device_qubits") as usize,
            point.int("logical_qubits") as usize,
        );
        Row::new("fig05")
            .int("device_qubits", cell.device_qubits as i64)
            .int("logical_qubits", cell.logical_qubits as i64)
            .int("feasible", i64::from(cell.feasible))
            .num("pqec_win_fraction", cell.pqec_win_fraction)
    }
}

/// Figure 6 as a sweep: pQEC vs qec-cultivation over
/// (program size, device size). The historical binary iterated programs
/// outer and devices inner, so the axes keep that order.
pub struct Fig6Driver;

impl Fig6Driver {
    /// The point grid: 12–68 logical qubits × {10k, 20k} devices.
    pub fn spec() -> SweepSpec {
        SweepSpec::new("fig06")
            .axis_ints("logical_qubits", (12..=68).step_by(8).map(|n| n as i64))
            .axis_ints("device_qubits", [10_000, 20_000])
    }

    /// Evaluates one point (pure function of the point). An unfit
    /// workload (pQEC cannot host it) yields a `null` improvement; every
    /// point of the default grid fits.
    pub fn eval(point: &SweepPoint) -> Row {
        let n = point.int("logical_qubits") as usize;
        let dq = point.int("device_qubits") as usize;
        let device = DeviceModel::new(dq, 1e-3);
        let w = Workload::fche(n, 1);
        let improvement = pqec_fidelity(&w, &device).map_or(f64::NAN, |pqec| {
            let cult = cultivation_fidelity(&w, &device)
                .map_or(crate::fidelity::FIDELITY_FLOOR, |c| c.fidelity);
            pqec.fidelity / cult
        });
        Row::new("fig06")
            .int("device_qubits", dq as i64)
            .int("logical_qubits", n as i64)
            .num("improvement", improvement)
    }
}

/// Figure 8 as a sweep: patch-shuffling spacetime volume vs the naive
/// strategy with b = 1..=4 backup states, over the qubit ladder.
pub struct Fig8Driver;

impl Fig8Driver {
    /// The point grid: 20–76 qubits.
    pub fn spec() -> SweepSpec {
        SweepSpec::new("fig08").axis_ints("qubits", (20..=76).step_by(4).map(|n| n as i64))
    }

    /// Evaluates one qubit count (pure function of the point).
    pub fn eval(point: &SweepPoint) -> Row {
        let n = point.int("qubits") as usize;
        let model = InjectionModel::eft_default();
        let mut row = Row::new("fig08")
            .int("qubits", n as i64)
            .num("shuffling", patch_shuffling_volume(n, 1, &model).volume);
        for b in 1..=4 {
            row = row.num(
                &format!("naive_b{b}"),
                naive_backup_volume(n, 1, b, &model).volume,
            );
        }
        row
    }
}

/// Figure 11 as two sweeps: NISQ vs EFT fidelity against depth for the
/// blocked ansatz (grid `fig11`), plus the Section-4.4 theoretical
/// crossover as an axis-less companion spec (`fig11_crossover`).
pub struct Fig11Driver {
    curves: ArtifactCache<usize, Vec<CrossoverPoint>>,
}

impl Default for Fig11Driver {
    fn default() -> Self {
        Self::new()
    }
}

impl Fig11Driver {
    /// The depth ladder the binary has always printed: every fourth
    /// depth of the 24-deep curves.
    const DEPTHS: [i64; 6] = [1, 5, 9, 13, 17, 21];

    /// The point grid: qubit sizes × sampled depths.
    pub fn spec() -> SweepSpec {
        SweepSpec::new("fig11")
            .axis_ints("qubits", [8, 12, 16])
            .axis_ints("depth", Self::DEPTHS)
    }

    /// The companion single-point spec for the theoretical crossover.
    pub fn crossover_spec() -> SweepSpec {
        SweepSpec::new("fig11_crossover")
    }

    /// A driver with a per-sweep curve cache (each qubit size's 24-depth
    /// curve is computed once and shared across its depth points).
    pub fn new() -> Self {
        Fig11Driver {
            curves: ArtifactCache::new(),
        }
    }

    /// Evaluates one (qubits, depth) point (pure function of the point).
    pub fn eval(&self, point: &SweepPoint) -> Row {
        let n = point.int("qubits") as usize;
        let depth = point.int("depth") as usize;
        let curve = self.curves.get_or_build(n, || fig11_curves(n, 24));
        let pt = curve
            .iter()
            .find(|p| p.depth == depth)
            .expect("depth axis values lie inside the curve");
        Row::new("fig11")
            .int("qubits", n as i64)
            .int("depth", depth as i64)
            .num("nisq", pt.nisq)
            .num("eft", pt.eft)
    }

    /// Evaluates the crossover spec's single point.
    pub fn eval_crossover(_point: &SweepPoint) -> Row {
        Row::new("fig11_crossover").int("crossover_qubits", blocked_crossover_qubits() as i64)
    }

    /// Appends the curve cache's hit/miss counts to a summary row.
    pub fn append_cache_stats(&self, row: Row) -> Row {
        row.int("curve_cache_hits", self.curves.hits() as i64)
            .int("curve_cache_misses", self.curves.misses() as i64)
    }
}

/// The ZNE extension bench as a sweep: how much of the noisy gap
/// zero-noise extrapolation recovers, per execution regime.
pub struct Fig13ZneDriver;

impl Fig13ZneDriver {
    /// The Figure-13 workload the extension layers on.
    const QUBITS: usize = 6;

    /// The point grid: one point per execution regime.
    pub fn spec() -> SweepSpec {
        SweepSpec::new("fig13_zne").axis_strs("regime", ["NISQ", "pQEC"])
    }

    /// Evaluates one regime (pure function of the point).
    pub fn eval(point: &SweepPoint) -> Row {
        let regime = regime_by_name(point.str("regime"));
        let h = ising_1d(Self::QUBITS, 1.0);
        let ansatz = fully_connected_hea(Self::QUBITS, 1);
        let params: Vec<f64> = (0..ansatz.num_params()).map(|i| 0.21 * i as f64).collect();
        let ideal = energy_at_scale(&ansatz, &params, &regime, &h, 0.0);
        let noisy = energy_at_scale(&ansatz, &params, &regime, &h, 1.0);
        let zne = zne_energy(&ansatz, &params, &regime, &h, &[1.0, 1.5, 2.0]);
        let recovered = if (noisy - ideal).abs() > 1e-12 {
            1.0 - (zne.extrapolated - ideal).abs() / (noisy - ideal).abs()
        } else {
            1.0
        };
        Row::new("fig13_zne")
            .str("regime", regime.name())
            .num("noiseless", ideal)
            .num("noisy", noisy)
            .num("zne", zne.extrapolated)
            .num("recovered", recovered)
    }
}

/// Figure 15 as a sweep: VarSaw-style measurement mitigation vs plain
/// VQE over (model, regime) at J = 1.
pub struct Fig15Driver {
    config: VqeConfig,
    qubits: usize,
    /// Both regimes of a model share its Hamiltonian and exact ground
    /// energy (the Lanczos solve is the expensive part at 12 qubits).
    models: ArtifactCache<String, (PauliSum, f64)>,
}

impl Fig15Driver {
    /// The point grid: model × execution regime.
    pub fn spec(full_scale: bool) -> SweepSpec {
        SweepSpec::new("fig15")
            .with_config(scale_tag(full_scale))
            .axis_strs("model", ["Ising", "Heisenberg"])
            .axis_strs("regime", ["NISQ", "pQEC"])
    }

    /// A driver with the binary's reduced/full configuration (6 vs 12
    /// qubits; the VQE iteration budget scales with it).
    pub fn new(full_scale: bool) -> Self {
        Fig15Driver {
            config: VqeConfig {
                max_iters: if full_scale { 300 } else { 250 },
                restarts: 2,
                ..VqeConfig::default()
            },
            qubits: if full_scale { 12 } else { 6 },
            models: ArtifactCache::new(),
        }
    }

    /// Appends the model cache's hit/miss counts to a summary row.
    pub fn append_cache_stats(&self, row: Row) -> Row {
        row.int("model_cache_hits", self.models.hits() as i64)
            .int("model_cache_misses", self.models.misses() as i64)
    }

    /// Evaluates one (model, regime) point (pure function of the point).
    pub fn eval(&self, point: &SweepPoint) -> Row {
        let model = point.str("model");
        let n = self.qubits;
        let entry = self.models.get_or_build(model.to_string(), || {
            let h = model_hamiltonian(model, n, 1.0);
            let e0 = h.ground_energy_default().expect("lanczos");
            (h, e0)
        });
        let (h, e0) = (&entry.0, entry.1);
        let ansatz = fully_connected_hea(n, 1);
        let regime = regime_by_name(point.str("regime"));
        let plain = run_vqe(&ansatz, h, &regime, &self.config);
        let mitigated = run_vqe(
            &ansatz,
            h,
            &regime,
            &VqeConfig {
                mitigate_measurement: true,
                ..self.config
            },
        );
        Row::new("fig15")
            .str("model", model)
            .int("qubits", n as i64)
            .str("regime", regime.name())
            .num("plain", plain.best_energy)
            .num("mitigated", mitigated.best_energy)
            .num("e0", e0)
    }
}

/// Table 2 as a sweep: schedule length (cycles) of blocked_all_to_all vs
/// FCHE on the proposed layout, per qubit count.
pub struct Table2Driver;

impl Table2Driver {
    /// The point grid: the paper's three qubit counts.
    pub fn spec() -> SweepSpec {
        SweepSpec::new("table2").axis_ints("qubits", [20, 40, 60])
    }

    /// Evaluates one qubit count (pure function of the point).
    pub fn eval(point: &SweepPoint) -> Row {
        let n = point.int("qubits") as usize;
        let cfg = ScheduleConfig::default();
        let ours = LayoutModel::proposed();
        let blocked = schedule_ansatz(AnsatzKind::BlockedAllToAll, n, 1, &ours, &cfg);
        let fche = schedule_ansatz(AnsatzKind::FullyConnectedHea, n, 1, &ours, &cfg);
        Row::new("table2")
            .int("qubits", n as i64)
            .int("blocked_cycles", blocked.cycles as i64)
            .int("fche_cycles", fche.cycles as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_rows_cover_sweep() {
        let rows = fig4_rows();
        assert_eq!(rows.len(), 4 * 4); // 4 sizes × 4 factories
        for r in &rows {
            assert!(
                r.improvement >= 0.999,
                "pQEC must not lose: {} at n = {}, {}",
                r.improvement,
                r.qubits,
                r.factory
            );
        }
    }

    #[test]
    fn fig4_average_improvement_is_substantial() {
        let rows = fig4_rows();
        let ratios: Vec<f64> = rows.iter().map(|r| r.improvement).collect();
        let geo = eftq_numerics::stats::geometric_mean(&ratios);
        // The paper's Figure-4 improvements span 1–250×; our model's
        // geometric mean lands comfortably above 1.
        assert!(geo > 1.5, "{geo}");
    }

    #[test]
    fn fig5_has_white_and_contested_cells() {
        let cells = fig5_grid(&[10_000, 60_000], &[12, 40, 80]);
        // 80 logical qubits do not fit a 10k device at d = 11.
        let white = cells
            .iter()
            .find(|c| c.device_qubits == 10_000 && c.logical_qubits == 80)
            .unwrap();
        assert!(!white.feasible);
        // Small program on the big device: conventional wins most of the
        // ensemble.
        let conv_zone = cells
            .iter()
            .find(|c| c.device_qubits == 60_000 && c.logical_qubits == 12)
            .unwrap();
        assert!(conv_zone.feasible);
        assert!(
            conv_zone.pqec_win_fraction < 0.5,
            "{}",
            conv_zone.pqec_win_fraction
        );
        // Frontier program on the small device: pQEC wins.
        let pqec_zone = cells
            .iter()
            .find(|c| c.device_qubits == 10_000 && c.logical_qubits == 40)
            .unwrap();
        assert!(pqec_zone.feasible);
        assert!(
            pqec_zone.pqec_win_fraction > 0.5,
            "{}",
            pqec_zone.pqec_win_fraction
        );
    }

    #[test]
    fn fig6_crossover_with_logical_qubits() {
        let rows = fig6_rows(&[10_000], &[12, 24, 40, 60]);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        // Cultivation wins small (ratio < 1), pQEC wins large (ratio > 1).
        assert!(first.improvement < 1.0, "{}", first.improvement);
        assert!(last.improvement > 1.0, "{}", last.improvement);
        // The advantage grows from the small-program to the mid-size
        // regime (it may saturate/fluctuate once both fidelities floor).
        let r12 = rows.iter().find(|r| r.logical_qubits == 12).unwrap();
        let r24 = rows.iter().find(|r| r.logical_qubits == 24).unwrap();
        assert!(r24.improvement > r12.improvement);
    }

    #[test]
    fn fig6_more_space_helps_cultivation() {
        let rows10 = fig6_rows(&[10_000], &[24]);
        let rows20 = fig6_rows(&[20_000], &[24]);
        // On the bigger device cultivation has more units, so pQEC's
        // relative advantage shrinks.
        assert!(rows20[0].improvement <= rows10[0].improvement + 1e-9);
    }

    #[test]
    fn sweep_specs_enumerate_the_binary_loop_orders() {
        // The grids must reproduce the historical nested-loop orders so
        // sweep-engine artifacts stay row-for-row identical to the
        // pre-engine binaries.
        let fig12 = Fig12Driver::spec(false);
        assert_eq!(fig12.num_points(), 2 * 3 * 3);
        let p0 = fig12.point(0);
        assert_eq!(
            (p0.str("model"), p0.int("qubits"), p0.num("j")),
            ("Ising", 16, 0.25)
        );
        let p_last = fig12.point(17);
        assert_eq!(
            (p_last.str("model"), p_last.int("qubits"), p_last.num("j")),
            ("Heisenberg", 32, 1.0)
        );
        assert_eq!(Fig12Driver::spec(true).num_points(), 2 * 6 * 3);

        // fig13's binary iterated J outer, model inner.
        let fig13 = Fig13Driver::spec(false);
        let p1 = fig13.point(1);
        assert_eq!((p1.num("j"), p1.str("model")), (0.25, "Heisenberg"));
        assert_eq!(Fig13Driver::chem_spec().num_points(), 3 * 2);

        assert_eq!(Fig14Driver::spec(false).num_points(), 2 * 2 * 3);
        assert_eq!(Table1Driver::spec().num_points(), 4 * 3);
    }

    #[test]
    fn new_driver_grids_match_the_historical_loop_orders() {
        // Byte-identical golden artifacts depend on the specs replaying
        // the pre-port binaries' nested-loop orders exactly.
        let fig04 = Fig4Driver::spec();
        assert_eq!(fig04.num_points(), 4 * 4);
        let p0 = fig04.point(0);
        assert_eq!(p0.int("qubits"), 12);
        assert_eq!(p0.str("factory"), FACTORY_CATALOG[0].name);
        let p_last = fig04.point(15);
        assert_eq!(p_last.int("qubits"), 24);
        assert_eq!(p_last.str("factory"), FACTORY_CATALOG[3].name);

        let fig05 = Fig5Driver::spec(false);
        assert_eq!(fig05.num_points(), 6 * 10);
        let p0 = fig05.point(0);
        assert_eq!(
            (p0.int("device_qubits"), p0.int("logical_qubits")),
            (10_000, 12)
        );
        assert_eq!(Fig5Driver::spec(true).num_points(), 6 * 24);

        // fig06's binary printed programs outer, devices inner.
        let fig06 = Fig6Driver::spec();
        assert_eq!(fig06.num_points(), 8 * 2);
        let p1 = fig06.point(1);
        assert_eq!(
            (p1.int("logical_qubits"), p1.int("device_qubits")),
            (12, 20_000)
        );

        assert_eq!(Fig8Driver::spec().num_points(), 15);
        assert_eq!(Fig8Driver::spec().point(0).int("qubits"), 20);

        let fig11 = Fig11Driver::spec();
        assert_eq!(fig11.num_points(), 3 * 6);
        assert_eq!(fig11.point(0).int("qubits"), 8);
        assert_eq!(fig11.point(0).int("depth"), 1);
        assert_eq!(fig11.point(17).int("depth"), 21);
        assert_eq!(Fig11Driver::crossover_spec().num_points(), 1);

        assert_eq!(Fig13ZneDriver::spec().num_points(), 2);
        assert_eq!(Fig13ZneDriver::spec().point(0).str("regime"), "NISQ");

        let fig15 = Fig15Driver::spec(false);
        assert_eq!(fig15.num_points(), 2 * 2);
        assert_eq!(fig15.point(0).str("model"), "Ising");
        assert_eq!(fig15.point(0).str("regime"), "NISQ");

        assert_eq!(Table2Driver::spec().num_points(), 3);
    }

    #[test]
    fn fig4_driver_rows_match_the_batch_helper() {
        let rows = fig4_rows();
        for (point, expect) in Fig4Driver::spec().points().iter().zip(&rows) {
            let row = Fig4Driver::eval(point);
            assert_eq!(row.get_int("qubits"), Some(expect.qubits as i64));
            assert_eq!(row.get_str("factory"), Some(expect.factory));
            assert_eq!(row.get_num("pqec"), Some(expect.pqec));
            assert_eq!(row.get_num("conventional"), Some(expect.conventional));
            assert_eq!(row.get_num("improvement"), Some(expect.improvement));
        }
    }

    #[test]
    fn fig6_driver_rows_match_the_batch_helper() {
        let rows = fig6_rows(&[10_000, 20_000], &[12, 36, 68]);
        for point in Fig6Driver::spec().points() {
            let n = point.int("logical_qubits");
            let dq = point.int("device_qubits");
            let Some(expect) = rows
                .iter()
                .find(|r| r.logical_qubits as i64 == n && r.device_qubits as i64 == dq)
            else {
                continue;
            };
            let row = Fig6Driver::eval(&point);
            assert_eq!(row.get_num("improvement"), Some(expect.improvement));
        }
    }

    #[test]
    fn fig11_driver_shares_one_curve_per_qubit_count() {
        let driver = Fig11Driver::new();
        let spec = Fig11Driver::spec();
        for point in spec.points() {
            let row = driver.eval(&point);
            let curve = fig11_curves(point.int("qubits") as usize, 24);
            let expect = curve
                .iter()
                .find(|p| p.depth as i64 == point.int("depth"))
                .unwrap();
            assert_eq!(row.get_num("nisq"), Some(expect.nisq));
            assert_eq!(row.get_num("eft"), Some(expect.eft));
        }
        // 3 qubit sizes → 3 builds, everything else served from cache.
        assert_eq!(driver.curves.misses(), 3);
        assert_eq!(driver.curves.hits(), 18 - 3);
        let cross = Fig11Driver::eval_crossover(&Fig11Driver::crossover_spec().point(0));
        assert_eq!(cross.get_int("crossover_qubits"), Some(13));
    }

    #[test]
    fn table2_driver_reproduces_the_paper_cycles() {
        let report = eftq_sweep::run_sweep(
            &Table2Driver::spec(),
            &eftq_sweep::SweepOptions::default(),
            |p, _| Table2Driver::eval(p),
        )
        .unwrap();
        let blocked: Vec<i64> = report
            .rows
            .iter()
            .map(|r| r.get_int("blocked_cycles").unwrap())
            .collect();
        let fche: Vec<i64> = report
            .rows
            .iter()
            .map(|r| r.get_int("fche_cycles").unwrap())
            .collect();
        assert_eq!(blocked, vec![71, 121, 171]);
        assert_eq!(fche, vec![131, 271, 411]);
    }

    #[test]
    fn fig13_zne_driver_recovers_most_of_the_noisy_gap() {
        for point in Fig13ZneDriver::spec().points() {
            let row = Fig13ZneDriver::eval(&point);
            let recovered = row.get_num("recovered").unwrap();
            assert!(recovered > 0.9, "{}: {recovered}", point.str("regime"));
        }
    }

    #[test]
    fn table1_sweep_matches_direct_computation() {
        let spec = Table1Driver::spec();
        let report = eftq_sweep::run_sweep(&spec, &eftq_sweep::SweepOptions::default(), |p, _| {
            Table1Driver::eval(p)
        })
        .unwrap();
        assert_eq!(report.rows.len(), 12);
        // First row is the binary's first printed cell: Compact/linear.
        let first = &report.rows[0];
        assert_eq!(first.get_str("layout"), Some("Compact"));
        assert_eq!(first.get_str("ansatz"), Some("linear"));
        let direct: Vec<f64> = (8..=164)
            .step_by(4)
            .map(|n| spacetime_ratio(AnsatzKind::LinearHea, n, 1, LayoutKind::Compact))
            .collect();
        assert_eq!(
            first.get_num("mean_ratio"),
            Some(eftq_numerics::stats::mean(&direct))
        );
        // Every ratio ≥ 1 and the Grid rows dominate their Compact
        // counterparts (the paper's ordering).
        for row in &report.rows {
            assert!(row.get_num("mean_ratio").unwrap() >= 1.0);
        }
        let mean_of = |layout: &str, ansatz: &str| {
            report
                .rows
                .iter()
                .find(|r| {
                    r.get_str("layout") == Some(layout) && r.get_str("ansatz") == Some(ansatz)
                })
                .and_then(|r| r.get_num("mean_ratio"))
                .unwrap()
        };
        assert!(mean_of("Grid", "linear") > mean_of("Compact", "linear"));
    }

    #[test]
    fn clifford_artifact_cache_shares_compilations() {
        let artifacts = CliffordArtifacts::new();
        let a1 = artifacts.ansatz(AnsatzKind::FullyConnectedHea, 8);
        let a2 = artifacts.ansatz(AnsatzKind::FullyConnectedHea, 8);
        assert!(Arc::ptr_eq(&a1, &a2));
        let noise = ExecutionRegime::pqec_default().stabilizer_noise();
        let t1 = artifacts.template(&a1, &noise);
        let t2 = artifacts.template(&a2, &noise);
        assert!(Arc::ptr_eq(&t1, &t2));
        // A different noise model compiles separately.
        let t3 = artifacts.template(&a1, &StabilizerNoise::noiseless());
        assert!(!Arc::ptr_eq(&t1, &t3));
        assert_eq!(artifacts.templates.len(), 2);
    }
}
