//! The four execution regimes and their noise models (Section 5.2.1).
//!
//! * **NISQ** — bare hardware: CNOT error `p`, non-Rz single-qubit gates
//!   `p/10`, virtual `Rz` error 0, measurement `10p`, thermal relaxation on
//!   gates/idles (McKay et al. parameters, as quoted in Section 4.4).
//! * **pQEC** — the paper's proposal: every Clifford operation, memory
//!   window and measurement at the surface-code logical rate (~1e-7 at
//!   d = 11), `Rz(θ)` via magic-state injection at `23p/30` per attempt
//!   with `E[g] = 2` attempts per logical rotation.
//! * **qec-conventional** — Clifford+T with distillation (handled by the
//!   analytic fidelity model in [`crate::fidelity`]; its density-matrix
//!   noise is not separately modelled because the paper evaluates it only
//!   through the resource model).
//! * **qec-cultivation** — Clifford+T with magic-state cultivation
//!   (likewise analytic).

use eftq_qec::{InjectionModel, SurfaceCodeModel};
use eftq_stabilizer::{noise::TwirledIdle, StabilizerNoise};
use eftq_statesim::noise::{NoiseModel, Relaxation};

/// Which execution regime a VQA iteration runs under.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExecutionRegime {
    /// Bare NISQ hardware at physical error rate `p_phys`.
    Nisq {
        /// Physical two-qubit error rate.
        p_phys: f64,
    },
    /// Partial QEC: Cliffords at distance `distance`, rotations injected.
    Pqec {
        /// Surface-code distance for the Clifford fabric.
        distance: usize,
        /// Physical error rate.
        p_phys: f64,
    },
}

impl ExecutionRegime {
    /// The paper's NISQ baseline (`p = 1e-3`).
    pub fn nisq_default() -> Self {
        ExecutionRegime::Nisq { p_phys: 1e-3 }
    }

    /// The paper's pQEC operating point (`d = 11`, `p = 1e-3`).
    pub fn pqec_default() -> Self {
        ExecutionRegime::Pqec {
            distance: 11,
            p_phys: 1e-3,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionRegime::Nisq { .. } => "NISQ",
            ExecutionRegime::Pqec { .. } => "pQEC",
        }
    }

    /// The density-matrix noise model of Section 5.2.1 for this regime.
    ///
    /// NISQ: depolarizing + thermal relaxation gate errors, bit-flip
    /// (`10p`) measurement error, relaxation idling. pQEC: depolarizing
    /// gate/memory errors at the logical rate, bit-flip measurement at the
    /// logical rate, injected rotations at the effective
    /// `1 − (1 − 23p/30)²` rate, no relaxation (the code corrects it).
    pub fn noise_model(&self) -> NoiseModel {
        match *self {
            ExecutionRegime::Nisq { p_phys } => NoiseModel {
                depol_1q: p_phys / 10.0,
                depol_2q: p_phys,
                depol_rz: 0.0, // virtual Z
                depol_rot_xy: p_phys / 10.0,
                meas_flip: (10.0 * p_phys).min(0.45),
                idle_depol: 0.0,
                relaxation: Some(Relaxation::superconducting_defaults()),
            },
            ExecutionRegime::Pqec { distance, p_phys } => {
                let code = SurfaceCodeModel::new(distance, p_phys);
                let inj = InjectionModel::new(distance, p_phys);
                let p_l = code.logical_error_rate();
                NoiseModel {
                    depol_1q: p_l,
                    depol_2q: p_l,
                    depol_rz: inj.effective_rotation_error(),
                    depol_rot_xy: inj.effective_rotation_error(),
                    meas_flip: p_l,
                    idle_depol: p_l,
                    relaxation: None,
                }
            }
        }
    }

    /// The stabilizer Monte-Carlo noise for the Clifford-restricted VQE
    /// (Section 5.2.2). Idle windows use the Pauli-twirled relaxation of
    /// Ghosh et al. for NISQ; pQEC idles at the logical rate.
    pub fn stabilizer_noise(&self) -> StabilizerNoise {
        match *self {
            ExecutionRegime::Nisq { p_phys } => {
                let r = Relaxation::superconducting_defaults();
                StabilizerNoise {
                    depol_1q: p_phys / 10.0,
                    depol_2q: p_phys,
                    depol_rz: 0.0,
                    depol_rot_xy: p_phys / 10.0,
                    meas_flip: (10.0 * p_phys).min(0.45),
                    idle: TwirledIdle::from_relaxation(r.t_2q, r.t1, r.t2),
                }
            }
            ExecutionRegime::Pqec { distance, p_phys } => {
                let code = SurfaceCodeModel::new(distance, p_phys);
                let inj = InjectionModel::new(distance, p_phys);
                let p_l = code.logical_error_rate();
                StabilizerNoise {
                    depol_1q: p_l,
                    depol_2q: p_l,
                    // In pQEC both Rz and Rx/Ry rotations are injected
                    // (Rx = H·Rz·H with error-corrected Hadamards).
                    depol_rz: inj.effective_rotation_error(),
                    depol_rot_xy: inj.effective_rotation_error(),
                    meas_flip: p_l,
                    idle: TwirledIdle {
                        px: p_l / 4.0,
                        py: p_l / 4.0,
                        pz: p_l / 2.0,
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nisq_model_matches_section_4_4_rates() {
        let m = ExecutionRegime::nisq_default().noise_model();
        assert_eq!(m.depol_2q, 1e-3);
        assert_eq!(m.depol_1q, 1e-4);
        assert_eq!(m.depol_rz, 0.0);
        assert_eq!(m.meas_flip, 1e-2);
        assert!(m.relaxation.is_some());
    }

    #[test]
    fn pqec_model_matches_section_4_4_rates() {
        let m = ExecutionRegime::pqec_default().noise_model();
        // Clifford/memory/measurement ≈ 1e-7.
        assert!((m.depol_2q - 1e-7).abs() < 1e-9);
        assert!((m.meas_flip - 1e-7).abs() < 1e-9);
        // Injected rotations ≈ 2 × 0.7667e-3.
        assert!(m.depol_rz > 1.0e-3 && m.depol_rz < 1.7e-3, "{}", m.depol_rz);
        assert!(m.relaxation.is_none());
        assert!(m.idle_depol > 0.0);
    }

    #[test]
    fn pqec_rotations_dominate_its_error_budget() {
        let m = ExecutionRegime::pqec_default().noise_model();
        assert!(m.depol_rz / m.depol_2q > 1e3);
    }

    #[test]
    fn stabilizer_noise_mirrors_dm_noise() {
        let s = ExecutionRegime::pqec_default().stabilizer_noise();
        let d = ExecutionRegime::pqec_default().noise_model();
        assert_eq!(s.depol_2q, d.depol_2q);
        assert_eq!(s.depol_rz, d.depol_rz);
        assert_eq!(s.meas_flip, d.meas_flip);
        // NISQ: rotations about X are physical gates, Rz is free.
        let sn = ExecutionRegime::nisq_default().stabilizer_noise();
        assert_eq!(sn.depol_rz, 0.0);
        assert!(sn.depol_rot_xy > 0.0);
        assert!(sn.idle.total() > 0.0);
    }

    #[test]
    fn names() {
        assert_eq!(ExecutionRegime::nisq_default().name(), "NISQ");
        assert_eq!(ExecutionRegime::pqec_default().name(), "pQEC");
    }
}
