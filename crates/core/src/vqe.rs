//! The density-matrix VQE driver (Figures 13 and 15).
//!
//! One VQE run: a parameterized ansatz, a Hamiltonian, an execution regime
//! (whose noise model shapes every energy evaluation) and a classical
//! optimizer. The paper runs Cobyla and ImFil with three to five seeds and
//! reports the best (Section 5.2.1); [`run_vqe`] mirrors that protocol
//! with Nelder–Mead / coordinate-search / SPSA and explicit restart seeds.

use crate::regimes::ExecutionRegime;
use crate::varsaw::measured_energy;
use eftq_circuit::Ansatz;
use eftq_numerics::SeedSequence;
use eftq_optim::{CoordinateSearch, NelderMead, OptimResult, Optimizer, Spsa};
use eftq_pauli::PauliSum;
use eftq_statesim::noise::run_noisy;
use rand::Rng;

/// Which classical optimizer drives the loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VqeOptimizer {
    /// Nelder–Mead simplex (the Cobyla stand-in).
    NelderMead,
    /// Coordinate/stencil search (the ImFil stand-in).
    CoordinateSearch,
    /// SPSA.
    Spsa,
}

/// VQE configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VqeConfig {
    /// Classical optimizer.
    pub optimizer: VqeOptimizer,
    /// Optimizer iteration budget per restart.
    pub max_iters: usize,
    /// Independent restarts ("three to five seeds", Section 5.2.1).
    pub restarts: usize,
    /// Root seed.
    pub seed: u64,
    /// Apply VarSaw-style measurement mitigation to every energy
    /// evaluation (Figure 15).
    pub mitigate_measurement: bool,
}

impl Default for VqeConfig {
    fn default() -> Self {
        VqeConfig {
            optimizer: VqeOptimizer::NelderMead,
            max_iters: 120,
            restarts: 3,
            seed: 0xefa_2025,
            mitigate_measurement: false,
        }
    }
}

/// Outcome of a VQE run.
#[derive(Clone, Debug, PartialEq)]
pub struct VqeOutcome {
    /// Best (lowest) energy across restarts.
    pub best_energy: f64,
    /// Parameters achieving it.
    pub best_params: Vec<f64>,
    /// Best-so-far energy trace of the winning restart.
    pub history: Vec<f64>,
    /// Total objective evaluations across restarts.
    pub evaluations: usize,
}

/// Evaluates the regime-noisy energy of one parameter vector.
///
/// The bound circuit runs through the regime's density-matrix noise model;
/// the energy is then estimated under the regime's readout error, with or
/// without VarSaw mitigation.
pub fn noisy_energy(
    ansatz: &Ansatz,
    params: &[f64],
    regime: &ExecutionRegime,
    observable: &PauliSum,
    mitigate: bool,
) -> f64 {
    let circuit = ansatz.bind(params);
    let mut noise = regime.noise_model();
    // Readout error is handled analytically at estimation time (the
    // measured_energy damping), not as a channel.
    let meas_flip = noise.meas_flip;
    noise.meas_flip = 0.0;
    let (rho, _) = run_noisy(&circuit, &noise);
    measured_energy(&rho, observable, meas_flip.min(0.49), mitigate)
}

/// Runs VQE under an execution regime.
///
/// # Panics
///
/// Panics if the ansatz and observable disagree on qubit count, if
/// `restarts == 0`, or if the register exceeds the density-matrix limit.
pub fn run_vqe(
    ansatz: &Ansatz,
    observable: &PauliSum,
    regime: &ExecutionRegime,
    config: &VqeConfig,
) -> VqeOutcome {
    assert_eq!(
        ansatz.num_qubits(),
        observable.num_qubits(),
        "ansatz/observable size mismatch"
    );
    assert!(config.restarts >= 1, "need at least one restart");
    let seeds = SeedSequence::new(config.seed).derive("vqe");
    let num_params = ansatz.num_params();

    let mut best: Option<(OptimResult, Vec<f64>)> = None;
    let mut total_evals = 0usize;
    for restart in 0..config.restarts {
        let mut rng = seeds.derive_index(restart as u64).rng();
        let x0: Vec<f64> = (0..num_params)
            .map(|_| rng.gen::<f64>() * std::f64::consts::PI - std::f64::consts::FRAC_PI_2)
            .collect();
        let mut objective = |params: &[f64]| {
            noisy_energy(
                ansatz,
                params,
                regime,
                observable,
                config.mitigate_measurement,
            )
        };
        let result = match config.optimizer {
            VqeOptimizer::NelderMead => NelderMead {
                max_iters: config.max_iters,
                ..NelderMead::default()
            }
            .minimize(&mut objective, &x0),
            VqeOptimizer::CoordinateSearch => CoordinateSearch {
                max_evals: config.max_iters * num_params.max(1),
                ..CoordinateSearch::default()
            }
            .minimize(&mut objective, &x0),
            VqeOptimizer::Spsa => Spsa {
                max_iters: config.max_iters,
                seed: seeds.derive("spsa").derive_index(restart as u64).seed(),
                ..Spsa::default()
            }
            .minimize(&mut objective, &x0),
        };
        total_evals += result.evaluations;
        if best
            .as_ref()
            .map_or(true, |(b, _)| result.best_value < b.best_value)
        {
            let params = result.best_params.clone();
            best = Some((result, params));
        }
    }
    let (result, best_params) = best.expect("at least one restart ran");
    VqeOutcome {
        best_energy: result.best_value,
        best_params,
        history: result.history,
        evaluations: total_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::relative_improvement;
    use crate::hamiltonians;
    use eftq_circuit::ansatz::fully_connected_hea;

    fn quick_config() -> VqeConfig {
        VqeConfig {
            max_iters: 40,
            restarts: 2,
            ..VqeConfig::default()
        }
    }

    #[test]
    fn vqe_reaches_near_ground_noiselessly() {
        // 4-qubit Ising, pQEC noise is tiny for Cliffords; use a depth-1
        // FCHE which is expressive enough to get close.
        let h = hamiltonians::ising_1d(4, 0.5);
        let e0 = h.ground_energy_default().unwrap();
        let a = fully_connected_hea(4, 1);
        let out = run_vqe(
            &a,
            &h,
            &ExecutionRegime::pqec_default(),
            &VqeConfig {
                max_iters: 150,
                restarts: 3,
                ..VqeConfig::default()
            },
        );
        assert!(out.best_energy >= e0 - 1e-6, "below ground?");
        assert!(
            out.best_energy < e0 * 0.8,
            "should reach 80% of ground: {} vs {e0}",
            out.best_energy
        );
    }

    #[test]
    fn pqec_beats_nisq_on_small_ising() {
        let h = hamiltonians::ising_1d(4, 1.0);
        let e0 = h.ground_energy_default().unwrap();
        let a = fully_connected_hea(4, 1);
        let pqec = run_vqe(&a, &h, &ExecutionRegime::pqec_default(), &quick_config());
        let nisq = run_vqe(&a, &h, &ExecutionRegime::nisq_default(), &quick_config());
        let gamma = relative_improvement(e0, pqec.best_energy, nisq.best_energy);
        assert!(gamma > 1.0, "γ = {gamma}");
    }

    #[test]
    fn mitigation_improves_convergence() {
        // Figure 15's mechanism at test scale.
        let h = hamiltonians::heisenberg_1d(4, 1.0);
        let a = fully_connected_hea(4, 1);
        let plain = run_vqe(&a, &h, &ExecutionRegime::nisq_default(), &quick_config());
        let mitigated = run_vqe(
            &a,
            &h,
            &ExecutionRegime::nisq_default(),
            &VqeConfig {
                mitigate_measurement: true,
                ..quick_config()
            },
        );
        assert!(
            mitigated.best_energy <= plain.best_energy + 1e-9,
            "{} vs {}",
            mitigated.best_energy,
            plain.best_energy
        );
    }

    #[test]
    fn optimizers_all_run() {
        let h = hamiltonians::ising_1d(3, 0.25);
        let a = fully_connected_hea(3, 1);
        for opt in [
            VqeOptimizer::NelderMead,
            VqeOptimizer::CoordinateSearch,
            VqeOptimizer::Spsa,
        ] {
            let out = run_vqe(
                &a,
                &h,
                &ExecutionRegime::pqec_default(),
                &VqeConfig {
                    optimizer: opt,
                    max_iters: 20,
                    restarts: 1,
                    ..VqeConfig::default()
                },
            );
            assert!(out.best_energy.is_finite(), "{opt:?}");
            assert!(out.evaluations > 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let h = hamiltonians::ising_1d(3, 0.5);
        let a = fully_connected_hea(3, 1);
        let run = || run_vqe(&a, &h, &ExecutionRegime::pqec_default(), &quick_config());
        let x = run();
        let y = run();
        assert_eq!(x.best_energy, y.best_energy);
        assert_eq!(x.best_params, y.best_params);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_rejected() {
        let h = hamiltonians::ising_1d(3, 0.5);
        let a = fully_connected_hea(4, 1);
        let _ = run_vqe(&a, &h, &ExecutionRegime::pqec_default(), &quick_config());
    }
}
