//! Optimal Parameter Resilience (OPR) — the noise-robustness property VQAs
//! rest on (Section 2.1).
//!
//! OPR (Wang et al.): parameters that minimize the loss on *noisy*
//! hardware often also minimize it on noiseless hardware. The paper leans
//! on this to argue that a VQA trained under pQEC noise transfers to the
//! ideal device. This module measures the property: optimize under a
//! regime's noise, transfer the winning parameters to a noiseless
//! evaluation, and compare against both the noisy optimum and a
//! random-parameter baseline.

use crate::regimes::ExecutionRegime;
use crate::vqe::{noisy_energy, run_vqe, VqeConfig};
use eftq_circuit::Ansatz;
use eftq_numerics::SeedSequence;
use eftq_pauli::PauliSum;
use eftq_statesim::StateVector;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of an OPR transfer experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OprReport {
    /// Best energy seen during the noisy optimization.
    pub noisy_optimum: f64,
    /// Noiseless energy of the transferred (noisy-optimal) parameters.
    pub transferred: f64,
    /// Mean noiseless energy of random parameter vectors (the baseline
    /// transfer must beat for OPR to hold).
    pub random_baseline: f64,
    /// Exact ground energy (Lanczos) for context.
    pub ground_energy: f64,
}

impl OprReport {
    /// Whether OPR held: the transferred parameters beat random ones
    /// noiselessly.
    pub fn opr_holds(&self) -> bool {
        self.transferred < self.random_baseline
    }

    /// Fraction of the random-to-ground gap the transfer closes.
    pub fn transfer_quality(&self) -> f64 {
        let denom = self.random_baseline - self.ground_energy;
        if denom.abs() < 1e-12 {
            return 1.0;
        }
        (self.random_baseline - self.transferred) / denom
    }
}

/// Noiseless energy of one parameter vector.
pub fn noiseless_energy(ansatz: &Ansatz, params: &[f64], observable: &PauliSum) -> f64 {
    StateVector::from_circuit(&ansatz.bind(params)).expectation(observable)
}

/// Runs the OPR transfer experiment: optimize under `regime`'s noise,
/// evaluate the winner noiselessly, compare to `baseline_samples` random
/// parameter vectors.
///
/// # Panics
///
/// Panics on size mismatch or `baseline_samples == 0`.
pub fn parameter_transfer(
    ansatz: &Ansatz,
    observable: &PauliSum,
    regime: &ExecutionRegime,
    config: &VqeConfig,
    baseline_samples: usize,
) -> OprReport {
    assert!(baseline_samples > 0, "need at least one baseline sample");
    let outcome = run_vqe(ansatz, observable, regime, config);
    let transferred = noiseless_energy(ansatz, &outcome.best_params, observable);
    let mut rng = SeedSequence::new(config.seed).derive("opr-baseline").rng();
    let baseline: f64 = (0..baseline_samples)
        .map(|_| {
            let params: Vec<f64> = (0..ansatz.num_params())
                .map(|_| rng.gen::<f64>() * std::f64::consts::PI - std::f64::consts::FRAC_PI_2)
                .collect();
            noiseless_energy(ansatz, &params, observable)
        })
        .sum::<f64>()
        / baseline_samples as f64;
    let ground = observable
        .ground_energy_default()
        .expect("Lanczos on small observables");
    let _ = noisy_energy; // re-exported path used by docs
    OprReport {
        noisy_optimum: outcome.best_energy,
        transferred,
        random_baseline: baseline,
        ground_energy: ground,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonians::{heisenberg_1d, ising_1d};
    use eftq_circuit::ansatz::fully_connected_hea;

    fn config() -> VqeConfig {
        VqeConfig {
            max_iters: 120,
            restarts: 2,
            ..VqeConfig::default()
        }
    }

    #[test]
    fn opr_holds_under_pqec() {
        let h = ising_1d(4, 0.5);
        let a = fully_connected_hea(4, 1);
        let report = parameter_transfer(&a, &h, &ExecutionRegime::pqec_default(), &config(), 20);
        assert!(report.opr_holds(), "{report:?}");
        assert!(report.transfer_quality() > 0.5, "{report:?}");
    }

    #[test]
    fn opr_holds_under_nisq() {
        // The paper's premise: even NISQ-noisy optima transfer, though the
        // optimization itself is harder.
        let h = heisenberg_1d(4, 1.0);
        let a = fully_connected_hea(4, 1);
        let report = parameter_transfer(&a, &h, &ExecutionRegime::nisq_default(), &config(), 20);
        assert!(report.opr_holds(), "{report:?}");
    }

    #[test]
    fn transferred_energy_bounded_by_ground() {
        let h = ising_1d(4, 1.0);
        let a = fully_connected_hea(4, 1);
        let report = parameter_transfer(&a, &h, &ExecutionRegime::pqec_default(), &config(), 10);
        assert!(report.transferred >= report.ground_energy - 1e-9);
        assert!(report.random_baseline >= report.ground_energy - 1e-9);
    }

    #[test]
    fn noiseless_energy_matches_statevector() {
        let h = ising_1d(3, 0.5);
        let a = fully_connected_hea(3, 1);
        let params = vec![0.1; a.num_params()];
        let direct = StateVector::from_circuit(&a.bind(&params)).expectation(&h);
        assert_eq!(noiseless_energy(&a, &params, &h), direct);
    }
}
