//! The analytic workload-fidelity model behind Figures 4, 5, 6 and 11.
//!
//! A VQA iteration is summarized by a [`Workload`] (gate counts + schedule
//! length on the proposed layout); each regime maps the workload to an
//! error budget λ and a fidelity `exp(−λ)`:
//!
//! * **NISQ** — CNOTs at `p`, physical single-qubit gates at `p/10`,
//!   measurements at `10p`, virtual `Rz` free (Section 4.4's rates).
//! * **pQEC** — Cliffords/measurements at the logical rate `p_L(d)`,
//!   rotations injected at `23p/30` per attempt × `E[g] = 2` attempts,
//!   memory at `p_L` per patch-cycle. `d` is the largest odd distance
//!   whose layout fits the device.
//! * **qec-conventional** — every rotation becomes `K(ε)` T gates; T
//!   states come from distillation factories that *compete with the
//!   program for space*: more factories → higher production rate but a
//!   smaller program code distance; fewer → long stalls and memory
//!   errors. The model scans the factory count and reports the best.
//! * **qec-cultivation** — same structure with cultivation units.
//!
//! Calibration notes (also in DESIGN.md): memory errors are charged at
//! `p_L` per patch per scheduler cycle — conservative, but it is what
//! reproduces the paper's finding that distillation stalls dominate large
//! factories. Fidelities are floored at [`FIDELITY_FLOOR`] (a fully
//! scrambled state retains no useful fidelity; ratios below the floor are
//! not meaningful).

use eftq_circuit::ansatz::{cnots_per_layer, AnsatzKind};
use eftq_circuit::synthesis::ross_selinger_t_count;
use eftq_layout::layouts::LayoutModel;
use eftq_layout::schedule::{schedule_ansatz, ScheduleConfig};
use eftq_qec::{CultivationModel, DeviceModel, FactoryConfig, InjectionModel, SurfaceCodeModel};
use serde::{Deserialize, Serialize};

/// Fidelity floor: below this the state is noise and ratios saturate.
pub const FIDELITY_FLOOR: f64 = 1e-3;

/// Gridsynth precision for the Clifford+T baselines ("hundreds of T gates
/// per rotation for reasonable accuracy", Section 1 — `K(1e-10) = 97`).
pub const SYNTHESIS_PRECISION: f64 = 1e-10;

/// Largest code distance the distance-budgeting search considers.
pub const MAX_DISTANCE: usize = 25;

/// Gate-count and schedule summary of one VQA iteration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Logical qubits.
    pub logical_qubits: usize,
    /// Ansatz depth p.
    pub depth: usize,
    /// Total CNOTs.
    pub cx: usize,
    /// Physical (non-virtual) single-qubit gates under NISQ — the `Rx`
    /// rotations of the HEA rotation layers.
    pub physical_1q: usize,
    /// Logical injected rotations under pQEC (`Rx` and `Rz`).
    pub rotations: usize,
    /// Measurements.
    pub measurements: usize,
    /// Critical-path cycles on the proposed layout.
    pub cycles: usize,
    /// Tiles of the proposed layout.
    pub tiles: usize,
    /// Rotation slots in series on one qubit (rotation layers × 2).
    pub serial_rotation_slots: usize,
}

impl Workload {
    fn from_ansatz(kind: AnsatzKind, n: usize, depth: usize) -> Workload {
        let sched = schedule_ansatz(
            kind,
            n,
            depth,
            &LayoutModel::proposed(),
            &ScheduleConfig::default(),
        );
        Workload {
            logical_qubits: n,
            depth,
            cx: cnots_per_layer(kind, n).expect("closed-form ansatz") * depth,
            physical_1q: n * (depth + 1),
            rotations: 2 * n * (depth + 1),
            measurements: n,
            cycles: sched.cycles,
            tiles: sched.tiles,
            serial_rotation_slots: 2 * (depth + 1),
        }
    }

    /// A fully-connected hardware-efficient ansatz iteration (the Figure-4
    /// and Figure-13 workload).
    pub fn fche(n: usize, depth: usize) -> Workload {
        Workload::from_ansatz(AnsatzKind::FullyConnectedHea, n, depth)
    }

    /// A `blocked_all_to_all` iteration (Figures 11 and 14).
    ///
    /// # Panics
    ///
    /// Panics unless `n = 4k + 4`.
    pub fn blocked(n: usize, depth: usize) -> Workload {
        Workload::from_ansatz(AnsatzKind::BlockedAllToAll, n, depth)
    }

    /// A linear hardware-efficient iteration.
    pub fn linear(n: usize, depth: usize) -> Workload {
        Workload::from_ansatz(AnsatzKind::LinearHea, n, depth)
    }
}

/// Result of the pQEC fidelity model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PqecReport {
    /// Iteration fidelity.
    pub fidelity: f64,
    /// Chosen code distance.
    pub distance: usize,
    /// Physical qubits occupied.
    pub physical_qubits: usize,
}

/// Result of the Clifford+T baseline models.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CliffordTReport {
    /// Iteration fidelity.
    pub fidelity: f64,
    /// Program code distance.
    pub distance: usize,
    /// Factories / cultivation units deployed.
    pub units: usize,
    /// Execution time in scheduler cycles (including stalls).
    pub cycles: f64,
    /// Total T gates consumed.
    pub t_count: usize,
}

/// NISQ iteration fidelity (no device constraint — NISQ runs on bare
/// qubits).
pub fn nisq_fidelity(w: &Workload, p_phys: f64) -> f64 {
    let lambda = w.cx as f64 * p_phys
        + w.physical_1q as f64 * p_phys / 10.0
        + w.measurements as f64 * (10.0 * p_phys).min(0.45);
    (-lambda).exp().max(FIDELITY_FLOOR)
}

/// Largest odd distance (3..=[`MAX_DISTANCE`]) whose `tiles` patches fit
/// `budget` physical qubits.
fn best_distance(tiles: usize, budget: usize) -> Option<usize> {
    let mut best = None;
    let mut d = 3;
    while d <= MAX_DISTANCE {
        if tiles * (2 * d * d - 1) <= budget {
            best = Some(d);
        }
        d += 2;
    }
    best
}

/// pQEC iteration fidelity on a device, or `None` when even `d = 3` does
/// not fit.
pub fn pqec_fidelity(w: &Workload, device: &DeviceModel) -> Option<PqecReport> {
    let distance = best_distance(w.tiles, device.physical_qubits)?;
    let code = SurfaceCodeModel::new(distance, device.p_phys);
    let inj = InjectionModel::new(distance, device.p_phys);
    let p_l = code.logical_error_rate();
    // Rotations consume injected states serially per qubit; consumption
    // windows extend the schedule.
    let cycles =
        w.cycles as f64 + w.serial_rotation_slots as f64 * code.consumption_cycles() as f64;
    let lambda = w.cx as f64 * p_l
        + w.rotations as f64 * inj.expected_attempts() * inj.rz_error_rate()
        + w.measurements as f64 * p_l
        + w.tiles as f64 * cycles * p_l;
    Some(PqecReport {
        fidelity: (-lambda).exp().max(FIDELITY_FLOOR),
        distance,
        physical_qubits: w.tiles * (2 * distance * distance - 1),
    })
}

/// qec-conventional iteration fidelity with a given factory design,
/// scanning the factory count for the best space/throughput trade-off.
/// Returns `None` when no (program, ≥1 factory) split fits the device.
pub fn conventional_fidelity(
    w: &Workload,
    device: &DeviceModel,
    factory: &FactoryConfig,
) -> Option<CliffordTReport> {
    let t_per_rotation = ross_selinger_t_count(SYNTHESIS_PRECISION);
    let t_total = w.rotations * t_per_rotation;
    let max_factories = device.physical_qubits / factory.physical_qubits;
    let mut best: Option<CliffordTReport> = None;
    for n_fact in 1..=max_factories {
        let leftover = device.leftover(n_fact * factory.physical_qubits);
        let Some(distance) = best_distance(w.tiles, leftover) else {
            continue;
        };
        let code = SurfaceCodeModel::new(distance, device.p_phys);
        let p_l = code.logical_error_rate();
        let production = factory.production_rate(n_fact); // states/cycle
        let t_serial = w.serial_rotation_slots as f64
            * t_per_rotation as f64
            * code.consumption_cycles() as f64;
        let t_stall = t_total as f64 / production;
        let cycles = w.cycles as f64 + t_serial.max(t_stall);
        let lambda = w.cx as f64 * p_l
            + t_total as f64 * factory.output_error(device.p_phys)
            + t_total as f64 * p_l // T consumptions are lattice surgery ops
            + w.rotations as f64 * SYNTHESIS_PRECISION
            + w.measurements as f64 * p_l
            + w.tiles as f64 * cycles * p_l;
        let report = CliffordTReport {
            fidelity: (-lambda).exp().max(FIDELITY_FLOOR),
            distance,
            units: n_fact,
            cycles,
            t_count: t_total,
        };
        if best.map_or(true, |b| report.fidelity > b.fidelity) {
            best = Some(report);
        }
    }
    best
}

/// qec-conventional with the best factory from the Section-3.2 catalog.
pub fn conventional_fidelity_best_factory(
    w: &Workload,
    device: &DeviceModel,
) -> Option<CliffordTReport> {
    eftq_qec::FACTORY_CATALOG
        .iter()
        .filter_map(|f| conventional_fidelity(w, device, f))
        .max_by(|a, b| a.fidelity.partial_cmp(&b.fidelity).unwrap())
}

/// qec-cultivation iteration fidelity (Section 3.4), scanning the unit
/// count.
pub fn cultivation_fidelity(w: &Workload, device: &DeviceModel) -> Option<CliffordTReport> {
    let t_per_rotation = ross_selinger_t_count(SYNTHESIS_PRECISION);
    let t_total = w.rotations * t_per_rotation;
    let mut best: Option<CliffordTReport> = None;
    // Scan the program distance: cultivation units fill whatever is left.
    let mut d = 3;
    while d <= MAX_DISTANCE {
        let program_qubits = w.tiles * (2 * d * d - 1);
        if program_qubits > device.physical_qubits {
            break;
        }
        let model = CultivationModel::new(d, device.p_phys);
        let units = model.units_in(device.leftover(program_qubits));
        if units == 0 {
            d += 2;
            continue;
        }
        let code = SurfaceCodeModel::new(d, device.p_phys);
        let p_l = code.logical_error_rate();
        let t_serial = w.serial_rotation_slots as f64
            * t_per_rotation as f64
            * code.consumption_cycles() as f64;
        let t_stall = t_total as f64 * model.cycles_between_states(units);
        let cycles = w.cycles as f64 + t_serial.max(t_stall);
        let lambda = w.cx as f64 * p_l
            + t_total as f64 * model.output_error()
            + t_total as f64 * p_l
            + w.rotations as f64 * SYNTHESIS_PRECISION
            + w.measurements as f64 * p_l
            + w.tiles as f64 * cycles * p_l;
        let report = CliffordTReport {
            fidelity: (-lambda).exp().max(FIDELITY_FLOOR),
            distance: d,
            units,
            cycles,
            t_count: t_total,
        };
        if best.map_or(true, |b| report.fidelity > b.fidelity) {
            best = Some(report);
        }
        d += 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eft() -> DeviceModel {
        DeviceModel::eft_default()
    }

    #[test]
    fn workload_counts_fche() {
        let w = Workload::fche(12, 1);
        assert_eq!(w.cx, 66);
        assert_eq!(w.rotations, 48);
        assert_eq!(w.physical_1q, 24);
        assert_eq!(w.cycles, 75); // 7N − 9
        assert_eq!(w.tiles, 24);
    }

    #[test]
    fn pqec_beats_nisq_at_12_qubits() {
        let w = Workload::fche(12, 1);
        let pqec = pqec_fidelity(&w, &eft()).unwrap();
        let nisq = nisq_fidelity(&w, 1e-3);
        assert!(pqec.fidelity > nisq, "{} vs {nisq}", pqec.fidelity);
        // The distance search may exceed the paper's d = 11 when spare
        // space allows (more distance never hurts pQEC).
        assert!(pqec.distance >= 11, "{}", pqec.distance);
    }

    /// Figure 4's headline: pQEC ≥ qec-conventional for every factory
    /// configuration at 12–24 qubits on the 10k device, and the advantage
    /// grows with qubit count for the sweet-spot factory.
    #[test]
    fn fig4_pqec_dominates_conventional() {
        for n in [12usize, 16, 20, 24] {
            let w = Workload::fche(n, 1);
            let pqec = pqec_fidelity(&w, &eft()).unwrap();
            for f in &eftq_qec::FACTORY_CATALOG {
                let conv = conventional_fidelity(&w, &eft(), f);
                if let Some(conv) = conv {
                    assert!(
                        pqec.fidelity >= conv.fidelity * 0.999,
                        "n = {n}, {}: pQEC {} vs conv {}",
                        f.name,
                        pqec.fidelity,
                        conv.fidelity
                    );
                }
            }
        }
    }

    #[test]
    fn fig4_sweet_spot_advantage_grows_with_size() {
        let sweet = &eftq_qec::FACTORY_CATALOG[2]; // (15-to-1)_{11,5,5}
        let ratio = |n: usize| {
            let w = Workload::fche(n, 1);
            let p = pqec_fidelity(&w, &eft()).unwrap().fidelity;
            let c = conventional_fidelity(&w, &eft(), sweet).unwrap().fidelity;
            p / c
        };
        let r12 = ratio(12);
        let r24 = ratio(24);
        assert!(r12 >= 1.0, "{r12}");
        assert!(r24 > r12, "{r24} vs {r12}");
        // The paper's inset: sweet-spot ratios sit around 1–2.5.
        assert!(r12 < 4.0, "{r12}");
    }

    #[test]
    fn fig4_small_factory_is_worst() {
        let w = Workload::fche(16, 1);
        let small = conventional_fidelity(&w, &eft(), &eftq_qec::FACTORY_CATALOG[0])
            .unwrap()
            .fidelity;
        let sweet = conventional_fidelity(&w, &eft(), &eftq_qec::FACTORY_CATALOG[2])
            .unwrap()
            .fidelity;
        assert!(small < sweet, "{small} vs {sweet}");
    }

    /// Figure 5's frontier: on a big device a small program is better off
    /// with conventional QEC; at the device frontier pQEC wins.
    #[test]
    fn fig5_frontier_dynamics() {
        let big = DeviceModel::new(60_000, 1e-3);
        let small_program = Workload::fche(12, 1);
        let conv = conventional_fidelity_best_factory(&small_program, &big).unwrap();
        let pqec = pqec_fidelity(&small_program, &big).unwrap();
        assert!(
            conv.fidelity > pqec.fidelity,
            "{} vs {}",
            conv.fidelity,
            pqec.fidelity
        );

        let frontier_program = Workload::fche(40, 1);
        let conv2 = conventional_fidelity_best_factory(&frontier_program, &eft());
        let pqec2 = pqec_fidelity(&frontier_program, &eft()).unwrap();
        let conv2_f = conv2.map_or(0.0, |c| c.fidelity);
        assert!(pqec2.fidelity > conv2_f, "{} vs {conv2_f}", pqec2.fidelity);
    }

    /// Figure 6: cultivation wins for small programs, pQEC wins as logical
    /// qubits grow.
    #[test]
    fn fig6_cultivation_crossover() {
        let small = Workload::fche(12, 1);
        let cult = cultivation_fidelity(&small, &eft()).unwrap();
        let pqec = pqec_fidelity(&small, &eft()).unwrap();
        assert!(
            cult.fidelity > pqec.fidelity,
            "small: cult {} vs pqec {}",
            cult.fidelity,
            pqec.fidelity
        );

        let large = Workload::fche(60, 1);
        let cult2 = cultivation_fidelity(&large, &eft()).map_or(0.0, |c| c.fidelity);
        let pqec2 = pqec_fidelity(&large, &eft()).unwrap();
        assert!(
            pqec2.fidelity > cult2,
            "large: {} vs {cult2}",
            pqec2.fidelity
        );
    }

    #[test]
    fn infeasible_layouts_return_none() {
        let w = Workload::fche(40, 1);
        let tiny = DeviceModel::new(500, 1e-3);
        assert!(pqec_fidelity(&w, &tiny).is_none());
        assert!(conventional_fidelity(&w, &tiny, &eftq_qec::FACTORY_CATALOG[0]).is_none());
    }

    #[test]
    fn fidelity_floor_applies() {
        // A hopeless configuration floors rather than underflowing.
        let w = Workload::fche(24, 8);
        let f = conventional_fidelity(&w, &eft(), &eftq_qec::FACTORY_CATALOG[0]).unwrap();
        assert!(f.fidelity >= FIDELITY_FLOOR);
    }

    #[test]
    fn bigger_device_never_hurts_pqec() {
        let w = Workload::fche(20, 1);
        let small = pqec_fidelity(&w, &DeviceModel::new(12_000, 1e-3)).unwrap();
        let big = pqec_fidelity(&w, &DeviceModel::new(60_000, 1e-3)).unwrap();
        assert!(big.fidelity >= small.fidelity);
        assert!(big.distance >= small.distance);
    }

    #[test]
    fn nisq_fidelity_decreases_with_size() {
        let f12 = nisq_fidelity(&Workload::fche(12, 1), 1e-3);
        let f24 = nisq_fidelity(&Workload::fche(24, 1), 1e-3);
        assert!(f24 < f12);
    }
}
