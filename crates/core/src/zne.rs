//! Zero-noise extrapolation (ZNE) for EFT-VQA.
//!
//! Section 7 of the paper argues that pre/post-processing error
//! mitigation — VQA initialization, circuit optimization and **zero-noise
//! extrapolation** — transitions naturally from NISQ to the EFT regime,
//! "although their exact implementation would need to be appropriately
//! modified to be cognizant of QEC and FT computation". This module
//! provides that EFT-aware ZNE:
//!
//! * Noise scaling multiplies the *channel strengths* of the regime's
//!   noise model (digital gate folding is meaningless once gates are
//!   error-corrected, but the injected-rotation error — the dominant pQEC
//!   channel — scales directly with the number of redundant injections).
//! * Richardson extrapolation fits the energy at several scale factors and
//!   evaluates the fit at zero noise.

use crate::regimes::ExecutionRegime;
use crate::varsaw::measured_energy;
use eftq_circuit::Ansatz;
use eftq_pauli::PauliSum;
use eftq_statesim::noise::{run_noisy, NoiseModel};
use serde::{Deserialize, Serialize};

/// Scales every channel strength of a noise model by `factor` (clamping
/// probabilities to valid ranges). Relaxation times divide by the factor
/// (stronger noise = faster decay).
///
/// # Panics
///
/// Panics if `factor < 0`.
pub fn scale_noise(noise: &NoiseModel, factor: f64) -> NoiseModel {
    assert!(factor >= 0.0, "scale factor must be non-negative");
    let clamp = |p: f64| (p * factor).min(0.75);
    let clamp_meas = |p: f64| (p * factor).min(0.45);
    let mut out = noise.clone();
    out.depol_1q = clamp(noise.depol_1q);
    out.depol_2q = clamp(noise.depol_2q);
    out.depol_rz = clamp(noise.depol_rz);
    out.depol_rot_xy = clamp(noise.depol_rot_xy);
    out.meas_flip = clamp_meas(noise.meas_flip);
    out.idle_depol = clamp(noise.idle_depol);
    if let Some(r) = &mut out.relaxation {
        if factor > 0.0 {
            r.t1 /= factor;
            r.t2 /= factor;
        } else {
            // Zero noise: relaxation disappears.
            out.relaxation = None;
        }
    }
    out
}

/// Result of a zero-noise extrapolation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ZneResult {
    /// The scale factors used.
    pub factors: Vec<f64>,
    /// Measured energy at each factor.
    pub energies: Vec<f64>,
    /// The Richardson (polynomial) extrapolation to zero noise.
    pub extrapolated: f64,
}

/// Richardson extrapolation: the unique degree-`(n-1)` polynomial through
/// `(factors, values)` evaluated at 0 (Lagrange form).
///
/// # Panics
///
/// Panics if the inputs are empty, differ in length, or contain duplicate
/// factors.
pub fn richardson_extrapolate(factors: &[f64], values: &[f64]) -> f64 {
    assert!(!factors.is_empty(), "need at least one point");
    assert_eq!(factors.len(), values.len(), "length mismatch");
    let mut total = 0.0;
    for i in 0..factors.len() {
        let mut weight = 1.0;
        for j in 0..factors.len() {
            if i != j {
                let denom = factors[i] - factors[j];
                assert!(denom.abs() > 1e-12, "duplicate scale factors");
                weight *= (0.0 - factors[j]) / denom;
            }
        }
        total += weight * values[i];
    }
    total
}

/// Evaluates the regime-noisy energy of a bound parameter vector at one
/// noise scale.
pub fn energy_at_scale(
    ansatz: &Ansatz,
    params: &[f64],
    regime: &ExecutionRegime,
    observable: &PauliSum,
    factor: f64,
) -> f64 {
    let circuit = ansatz.bind(params);
    let mut noise = scale_noise(&regime.noise_model(), factor);
    let meas_flip = noise.meas_flip;
    noise.meas_flip = 0.0;
    let (rho, _) = run_noisy(&circuit, &noise);
    measured_energy(&rho, observable, meas_flip.min(0.49), false)
}

/// Zero-noise extrapolated energy at `params`, using the given scale
/// factors (conventionally `[1, 2, 3]`).
///
/// # Panics
///
/// Panics if `factors` is empty or contains duplicates/negative values.
pub fn zne_energy(
    ansatz: &Ansatz,
    params: &[f64],
    regime: &ExecutionRegime,
    observable: &PauliSum,
    factors: &[f64],
) -> ZneResult {
    assert!(!factors.is_empty(), "need at least one scale factor");
    let energies: Vec<f64> = factors
        .iter()
        .map(|&f| energy_at_scale(ansatz, params, regime, observable, f))
        .collect();
    ZneResult {
        factors: factors.to_vec(),
        energies: energies.clone(),
        extrapolated: richardson_extrapolate(factors, &energies),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonians::ising_1d;
    use eftq_circuit::ansatz::fully_connected_hea;

    #[test]
    fn richardson_linear_exact() {
        // y = 3 - 2x → y(0) = 3 from any two points.
        let y = richardson_extrapolate(&[1.0, 2.0], &[1.0, -1.0]);
        assert!((y - 3.0).abs() < 1e-12);
    }

    #[test]
    fn richardson_quadratic_exact() {
        // y = 1 + x² → y(0) = 1 from three points.
        let y = richardson_extrapolate(&[1.0, 2.0, 3.0], &[2.0, 5.0, 10.0]);
        assert!((y - 1.0).abs() < 1e-10);
    }

    #[test]
    fn scaling_is_monotone_and_clamped() {
        let base = ExecutionRegime::nisq_default().noise_model();
        let double = scale_noise(&base, 2.0);
        assert!((double.depol_2q - 2e-3).abs() < 1e-15);
        let huge = scale_noise(&base, 1e6);
        assert!(huge.depol_2q <= 0.75);
        assert!(huge.meas_flip <= 0.45);
        let zero = scale_noise(&base, 0.0);
        assert!(zero.is_noiseless());
    }

    #[test]
    fn zne_recovers_most_of_the_noiseless_energy() {
        let h = ising_1d(4, 1.0);
        let ansatz = fully_connected_hea(4, 1);
        let params: Vec<f64> = (0..ansatz.num_params()).map(|i| 0.23 * i as f64).collect();
        let regime = ExecutionRegime::nisq_default();

        let noiseless = energy_at_scale(&ansatz, &params, &regime, &h, 0.0);
        let noisy = energy_at_scale(&ansatz, &params, &regime, &h, 1.0);
        let zne = zne_energy(&ansatz, &params, &regime, &h, &[1.0, 1.5, 2.0]);
        let err_noisy = (noisy - noiseless).abs();
        let err_zne = (zne.extrapolated - noiseless).abs();
        assert!(
            err_zne < err_noisy,
            "ZNE should beat raw: {err_zne} vs {err_noisy} (noiseless {noiseless})"
        );
        // Substantial recovery, not a fluke.
        assert!(err_zne < 0.5 * err_noisy, "{err_zne} vs {err_noisy}");
    }

    #[test]
    fn zne_works_under_pqec_too() {
        // The EFT-aware part: scaling the injection channel extrapolates
        // the dominant pQEC error away.
        let h = ising_1d(4, 0.5);
        let ansatz = fully_connected_hea(4, 1);
        let params: Vec<f64> = (0..ansatz.num_params()).map(|i| 0.31 * i as f64).collect();
        let regime = ExecutionRegime::pqec_default();
        let noiseless = energy_at_scale(&ansatz, &params, &regime, &h, 0.0);
        let noisy = energy_at_scale(&ansatz, &params, &regime, &h, 1.0);
        let zne = zne_energy(&ansatz, &params, &regime, &h, &[1.0, 2.0]);
        assert!((zne.extrapolated - noiseless).abs() <= (noisy - noiseless).abs() + 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_factors_rejected() {
        let _ = richardson_extrapolate(&[1.0, 1.0], &[0.0, 0.0]);
    }
}
