//! The relative-improvement metric γ (Equation 3).

/// γ_{A/B} = (E₀ − E_B) / (E₀ − E_A): how much regime A closes the gap to
/// the reference energy `e0` relative to regime B. Values above 1 mean A
/// is closer to the reference than B.
///
/// Gaps are clamped below at `min_gap` (default use
/// [`relative_improvement`]) to keep the ratio finite when a regime
/// essentially reaches the reference.
///
/// # Examples
///
/// ```
/// use eft_vqa::relative_improvement;
///
/// // Reference −10; regime A reaches −9.9, regime B only −9.0.
/// let gamma = relative_improvement(-10.0, -9.9, -9.0);
/// assert!((gamma - 10.0).abs() < 1e-9);
/// ```
pub fn relative_improvement(e0: f64, e_a: f64, e_b: f64) -> f64 {
    relative_improvement_clamped(e0, e_a, e_b, 1e-9)
}

/// [`relative_improvement`] with an explicit gap clamp.
///
/// # Panics
///
/// Panics if `min_gap` is not positive or any energy is non-finite.
pub fn relative_improvement_clamped(e0: f64, e_a: f64, e_b: f64, min_gap: f64) -> f64 {
    assert!(min_gap > 0.0, "gap clamp must be positive");
    assert!(
        e0.is_finite() && e_a.is_finite() && e_b.is_finite(),
        "energies must be finite"
    );
    let gap_a = (e_a - e0).abs().max(min_gap);
    let gap_b = (e_b - e0).abs().max(min_gap);
    gap_b / gap_a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_regime_gives_gamma_above_one() {
        assert!(relative_improvement(-5.0, -4.8, -4.0) > 1.0);
    }

    #[test]
    fn worse_regime_gives_gamma_below_one() {
        assert!(relative_improvement(-5.0, -4.0, -4.8) < 1.0);
    }

    #[test]
    fn equal_regimes_give_unity() {
        assert!((relative_improvement(-5.0, -4.5, -4.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_convergence_is_clamped() {
        let g = relative_improvement(-5.0, -5.0, -4.0);
        assert!(g.is_finite());
        assert!(g > 1e6); // huge but finite
    }

    #[test]
    fn symmetric_inverse() {
        let ab = relative_improvement(-3.0, -2.5, -2.0);
        let ba = relative_improvement(-3.0, -2.0, -2.5);
        assert!((ab * ba - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = relative_improvement(f64::NAN, -1.0, -2.0);
    }
}
