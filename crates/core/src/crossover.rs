//! Section 4.4: the CNOT:Rz design rule and the Figure-11 NISQ/EFT
//! crossover.
//!
//! In the large-depth limit, NISQ error grows with the CNOT count (CNOT
//! error `p = 1e-3`) while pQEC error grows with the injected-rotation
//! count (injection error `0.76e-3`). An ansatz therefore prefers pQEC
//! when its CNOT count grows faster than 0.76× its runtime `Rz` count.
//! For `blocked_all_to_all` the ratio is `N/8 − 5/4 + 5/N`, which crosses
//! 0.76 at `N = 13` (the paper's empirical crossover is ≈12).

use crate::fidelity::{nisq_fidelity, pqec_fidelity, Workload};
use eftq_qec::DeviceModel;
use serde::{Deserialize, Serialize};

/// The Section-4.4 threshold: injection error / CNOT error = 0.76.
pub const RATIO_THRESHOLD: f64 = 0.76;

/// CNOT-to-runtime-Rz ratio of the `blocked_all_to_all` ansatz:
/// `(N²/2 − 5N + 20) / (4N) = N/8 − 5/4 + 5/N` (runtime rotations are
/// `2N·E[g] = 4N` per layer).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn blocked_cx_to_rz_ratio(n: usize) -> f64 {
    assert!(n > 0, "need at least one qubit");
    let nf = n as f64;
    nf / 8.0 - 1.25 + 5.0 / nf
}

/// CNOT-to-runtime-Rz ratio of the linear ansatz: `N / (4N) = 0.25`
/// (Section 4.4: "much lower than 0.76" — linear ansatze do not suit
/// pQEC).
pub fn linear_cx_to_rz_ratio(_n: usize) -> f64 {
    0.25
}

/// CNOT-to-runtime-Rz ratio of the FCHE ansatz:
/// `(N(N−1)/2) / (4N) = (N−1)/8` — grows as `O(N)`.
pub fn fche_cx_to_rz_ratio(n: usize) -> f64 {
    (n as f64 - 1.0) / 8.0
}

/// Smallest qubit count at which `blocked_all_to_all` prefers pQEC over
/// NISQ at large depth (the paper's theoretical `N ≥ 13`).
pub fn blocked_crossover_qubits() -> usize {
    // The ratio N/8 − 5/4 + 5/N is convex with its minimum near N ≈ 6.3;
    // search from 7 upward so the spurious small-N branch (where 5/N
    // dominates but the ansatz does not even exist) is ignored. The paper
    // compares at two decimals (ratio(13) = 0.7596 ⌢ 0.76), so we allow
    // the same rounding slack.
    (7..200)
        .find(|&n| blocked_cx_to_rz_ratio(n) >= RATIO_THRESHOLD - 5e-4)
        .expect("ratio grows linearly, a crossover exists")
}

/// One point of a Figure-11 curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrossoverPoint {
    /// Ansatz depth p.
    pub depth: usize,
    /// NISQ iteration fidelity.
    pub nisq: f64,
    /// pQEC (EFT) iteration fidelity.
    pub eft: f64,
}

/// Figure-11 fidelity-vs-depth curves for `blocked_all_to_all` on `n`
/// qubits (device: the EFT default).
///
/// # Panics
///
/// Panics unless `n = 4k + 4` (the blocked ansatz constraint).
pub fn fig11_curves(n: usize, max_depth: usize) -> Vec<CrossoverPoint> {
    let device = DeviceModel::eft_default();
    (1..=max_depth)
        .map(|depth| {
            let w = Workload::blocked(n, depth);
            CrossoverPoint {
                depth,
                nisq: nisq_fidelity(&w, device.p_phys),
                eft: pqec_fidelity(&w, &device)
                    .map_or(crate::fidelity::FIDELITY_FLOOR, |r| r.fidelity),
            }
        })
        .collect()
}

/// Whether pQEC wins at large depth for a blocked ansatz of `n` qubits
/// (slope comparison of the λ budgets).
pub fn pqec_wins_at_depth(n: usize, depth: usize) -> bool {
    let w = Workload::blocked(n, depth);
    let device = DeviceModel::eft_default();
    pqec_fidelity(&w, &device).is_some_and(|r| r.fidelity > nisq_fidelity(&w, device.p_phys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formula_matches_paper() {
        // N = 20: 20/8 − 1.25 + 0.25 = 1.5.
        assert!((blocked_cx_to_rz_ratio(20) - 1.5).abs() < 1e-12);
        assert_eq!(linear_cx_to_rz_ratio(50), 0.25);
        assert!((fche_cx_to_rz_ratio(9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crossover_is_thirteen() {
        // "exceeds 0.76 for all N ≥ 13" (Section 4.4).
        assert_eq!(blocked_crossover_qubits(), 13);
        assert!(blocked_cx_to_rz_ratio(12) < RATIO_THRESHOLD - 5e-4);
        assert!(blocked_cx_to_rz_ratio(13) >= RATIO_THRESHOLD - 5e-4);
        assert!(blocked_cx_to_rz_ratio(14) >= RATIO_THRESHOLD);
    }

    #[test]
    fn linear_ansatz_never_crosses() {
        for n in [8usize, 50, 200] {
            assert!(linear_cx_to_rz_ratio(n) < RATIO_THRESHOLD);
        }
    }

    /// Figure 11: at 8 qubits NISQ overtakes EFT at depth; at 16 qubits
    /// pQEC wins consistently.
    #[test]
    fn fig11_crossover_by_size() {
        let deep = 30;
        let small = fig11_curves(8, deep);
        let last_small = small.last().unwrap();
        assert!(
            last_small.nisq > last_small.eft,
            "8 qubits deep: NISQ {} vs EFT {}",
            last_small.nisq,
            last_small.eft
        );
        let large = fig11_curves(16, deep);
        let last_large = large.last().unwrap();
        assert!(
            last_large.eft > last_large.nisq,
            "16 qubits deep: EFT {} vs NISQ {}",
            last_large.eft,
            last_large.nisq
        );
    }

    #[test]
    fn fig11_twelve_qubits_favors_eft() {
        // The paper observes the practical crossover around 12 qubits.
        assert!(pqec_wins_at_depth(12, 20));
        assert!(!pqec_wins_at_depth(8, 20));
    }

    #[test]
    fn curves_decay_with_depth() {
        for pt in fig11_curves(12, 10).windows(2) {
            assert!(pt[1].nisq <= pt[0].nisq + 1e-12);
            assert!(pt[1].eft <= pt[0].eft + 1e-12);
        }
    }
}
