//! **EFT-VQA**: Variational Quantum Algorithms in the era of Early Fault
//! Tolerance — the reproduction's core crate.
//!
//! The paper's contribution is *partial quantum error correction* (pQEC):
//! in the EFT regime (~10 000 physical qubits, p ≈ 1e-3), error-correct
//! the Clifford portion of a VQA with lightweight surface codes and execute
//! its `Rz(θ)` rotations via magic-state injection rather than Clifford+T
//! decomposition plus T-state distillation. This crate composes every
//! substrate (simulators, QEC resource models, layouts, optimizers) into:
//!
//! * [`regimes`] — the four execution regimes (NISQ, pQEC,
//!   qec-conventional, qec-cultivation) and their noise models
//!   (Section 5.2.1).
//! * [`hamiltonians`] — the benchmark suite: 1-D Ising and Heisenberg
//!   chains (J = 0.25/0.5/1.0) and synthetic molecular Hamiltonians with
//!   the paper's qubit/term counts for H₂O, H₆ and LiH (Section 5.1).
//! * [`fidelity`] — the analytic workload-fidelity model behind Figures
//!   4–6 (factory stalls, memory errors, injection errors, code-distance
//!   budgeting).
//! * [`crossover`] — Section 4.4's CNOT:Rz design rule and the Figure-11
//!   NISQ/EFT crossover curves.
//! * [`vqe`] — the density-matrix VQE driver (Figures 13 and 15).
//! * [`clifford_vqe`] — the genetic Clifford-restricted VQE at scale
//!   (Figures 12 and 14).
//! * [`varsaw`] — VarSaw-style measurement-error mitigation (Figure 15).
//! * [`gamma`] — the relative-improvement metric γ (Equation 3).
//! * [`zne`] / [`opr`] — the Section-7 extensions: EFT-aware zero-noise
//!   extrapolation and the Optimal-Parameter-Resilience transfer
//!   experiment.
//! * [`sweeps`] — the figure-level experiment drivers consumed by the
//!   bench harness.
//!
//! # Examples
//!
//! ```
//! use eft_vqa::hamiltonians;
//! use eft_vqa::fidelity::{Workload, pqec_fidelity, nisq_fidelity};
//! use eftq_qec::DeviceModel;
//!
//! let h = hamiltonians::ising_1d(12, 0.5);
//! assert_eq!(h.num_qubits(), 12);
//!
//! // pQEC beats NISQ for a 12-qubit FCHE iteration on the EFT device.
//! let w = Workload::fche(12, 1);
//! let pqec = pqec_fidelity(&w, &DeviceModel::eft_default()).unwrap();
//! let nisq = nisq_fidelity(&w, 1e-3);
//! assert!(pqec.fidelity > nisq);
//! ```

#![deny(missing_docs)]

pub mod advisor;
pub mod clifford_vqe;
pub mod crossover;
pub mod fidelity;
pub mod gamma;
pub mod hamiltonians;
pub mod opr;
pub mod regimes;
pub mod sweeps;
pub mod varsaw;
pub mod vqe;
pub mod zne;

pub use advisor::{plan, RegimePlan};
pub use fidelity::Workload;
pub use gamma::relative_improvement;
pub use regimes::ExecutionRegime;

/// One-stop imports for the common workflow: build a Hamiltonian and an
/// ansatz, pick a regime, estimate energies or run a VQE, and orchestrate
/// grids of all of the above through the sweep engine.
///
/// # Examples
///
/// ```
/// use eft_vqa::prelude::*;
///
/// let h = ising_1d(6, 0.5);
/// let ansatz = fully_connected_hea(6, 1);
/// let noise = ExecutionRegime::pqec_default().stabilizer_noise();
/// let circuit = ansatz.bind_clifford(&vec![1; ansatz.num_params()]);
/// let run = estimate_energy(&circuit, &h, &noise, 64, SeedSequence::new(7));
/// assert!(run.energy.is_finite());
/// ```
pub mod prelude {
    pub use crate::clifford_vqe::{
        clifford_vqe, clifford_vqe_in_regime, clifford_vqe_with_template, reevaluate_genome,
        CliffordVqeConfig, CliffordVqeOutcome,
    };
    pub use crate::hamiltonians::{
        heisenberg_1d, ising_1d, molecular, Molecule, BOND_LENGTHS, COUPLINGS,
    };
    pub use crate::sweeps::{
        Fig11Driver, Fig12Driver, Fig13Driver, Fig13ZneDriver, Fig14Driver, Fig15Driver,
        Fig4Driver, Fig5Driver, Fig6Driver, Fig8Driver, Table1Driver, Table2Driver,
    };
    pub use crate::vqe::{run_vqe, VqeConfig, VqeOutcome};
    pub use crate::{plan, relative_improvement, ExecutionRegime, RegimePlan, Workload};
    pub use eftq_circuit::ansatz::{
        blocked_all_to_all, fully_connected_hea, linear_hea, qaoa, uccsd_lite,
    };
    pub use eftq_circuit::{Ansatz, AnsatzKind, Circuit, Gate};
    pub use eftq_numerics::SeedSequence;
    pub use eftq_pauli::{Pauli, PauliString, PauliSum};
    pub use eftq_stabilizer::{
        estimate_energy, estimate_energy_program, estimate_energy_threaded, NoiseProgram,
        NoiseTemplate, StabilizerNoise, Tableau,
    };
    pub use eftq_sweep::{
        run_sweep, ArtifactCache, Completion, FarmState, FaultKind, FaultPlan, PointCtx,
        PointFilter, Row, Shard, SweepOptions, SweepPoint, SweepSpec,
    };
}
