//! VarSaw-style measurement-error mitigation (Figure 15).
//!
//! VarSaw (Dangwal et al., ASPLOS 2023) is an application-tailored
//! *measurement* error mitigation for VQAs: it corrects the readout
//! corruption of each Hamiltonian term's estimate, reusing calibration
//! across the qubit-wise-commuting measurement groups. The mechanism that
//! matters for Figure 15 is the per-term readout correction, implemented
//! here on top of `eftq-statesim`'s confusion-matrix machinery:
//!
//! * Without mitigation, a term of weight `w` estimated from flipped
//!   readouts is damped by `(1 − 2·p_meas)^w`, which *distorts* the energy
//!   landscape (terms of different weight are damped differently), so the
//!   optimizer converges to the wrong point.
//! * With mitigation, the calibrated damping is divided back out per QWC
//!   group, restoring the landscape up to gate noise.

use eftq_pauli::{group_qubit_wise_commuting, PauliSum};
use eftq_statesim::DensityMatrix;

/// Energy estimate from a state under readout error, optionally
/// VarSaw-corrected.
///
/// `meas_flip` is the symmetric per-qubit readout flip probability. The
/// measured estimate of a weight-`w` term is damped by `(1 − 2p)^w`;
/// mitigation inverts that damping using the (assumed known) calibration,
/// exactly the inversion VarSaw performs per measurement subset.
///
/// # Panics
///
/// Panics unless `0 ≤ meas_flip < 0.5`.
pub fn measured_energy(
    rho: &DensityMatrix,
    observable: &PauliSum,
    meas_flip: f64,
    mitigate: bool,
) -> f64 {
    assert!(
        (0.0..0.5).contains(&meas_flip),
        "readout flip must be in [0, 0.5), got {meas_flip}"
    );
    let damping_base = 1.0 - 2.0 * meas_flip;
    // Group terms as VarSaw does — one calibration per QWC group. The
    // grouping does not change the ideal value but mirrors the real
    // measurement procedure (and its cost model).
    let groups = group_qubit_wise_commuting(observable);
    let mut energy = 0.0;
    for group in &groups {
        for term in &group.terms {
            let w = term.string.weight() as i32;
            let damping = damping_base.powi(w);
            let raw = rho.expectation_pauli(&term.string) * damping;
            let corrected = if mitigate { raw / damping } else { raw };
            energy += term.coefficient * corrected;
        }
    }
    energy
}

/// The number of measurement settings (QWC groups) VarSaw calibrates for
/// an observable — the quantity its savings are measured against.
pub fn measurement_settings(observable: &PauliSum) -> usize {
    group_qubit_wise_commuting(observable).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eftq_circuit::Circuit;

    fn bell_rho() -> DensityMatrix {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        DensityMatrix::from_circuit(&c)
    }

    fn zz_plus_z() -> PauliSum {
        let mut h = PauliSum::new(2);
        h.push_str(1.0, "ZZ");
        h.push_str(0.5, "ZI");
        h
    }

    #[test]
    fn mitigated_equals_ideal() {
        let rho = bell_rho();
        let h = zz_plus_z();
        let ideal = rho.expectation(&h);
        let mitigated = measured_energy(&rho, &h, 0.08, true);
        assert!((mitigated - ideal).abs() < 1e-12);
    }

    #[test]
    fn unmitigated_is_damped_weight_dependently() {
        let rho = bell_rho();
        let h = zz_plus_z();
        let raw = measured_energy(&rho, &h, 0.1, false);
        // ⟨ZZ⟩ = 1 damped by 0.8², ⟨ZI⟩ = 0 anyway.
        assert!((raw - 0.64).abs() < 1e-12, "{raw}");
    }

    #[test]
    fn zero_flip_makes_both_equal() {
        let rho = bell_rho();
        let h = zz_plus_z();
        let a = measured_energy(&rho, &h, 0.0, false);
        let b = measured_energy(&rho, &h, 0.0, true);
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn distortion_is_weight_dependent_not_uniform() {
        // A mix of weight-1 and weight-2 terms is *not* uniformly scaled —
        // the property that breaks the optimizer without mitigation.
        let mut c = Circuit::new(2);
        c.x(0);
        let rho = DensityMatrix::from_circuit(&c);
        let mut h = PauliSum::new(2);
        h.push_str(1.0, "ZZ"); // ⟨ZZ⟩ = −1
        h.push_str(1.0, "IZ"); // ⟨IZ⟩ = +1
        let raw = measured_energy(&rho, &h, 0.1, false);
        // −0.64 + 0.8 = 0.16, while a uniform damping of the ideal 0 would
        // give 0.
        assert!((raw - 0.16).abs() < 1e-12, "{raw}");
    }

    #[test]
    fn settings_count_matches_grouping() {
        let h = zz_plus_z();
        assert_eq!(measurement_settings(&h), 1); // both are Z-type
        let mut mixed = PauliSum::new(2);
        mixed.push_str(1.0, "XX");
        mixed.push_str(1.0, "ZZ");
        assert_eq!(measurement_settings(&mixed), 2);
    }

    #[test]
    #[should_panic(expected = "readout flip")]
    fn rejects_bad_flip() {
        let rho = bell_rho();
        let _ = measured_energy(&rho, &zz_plus_z(), 0.6, false);
    }
}
