//! The Clifford-restricted VQE at scale (Figures 12 and 14).
//!
//! Section 5.2.2: rotation angles are constrained to multiples of π/2,
//! turning the ansatz into a Clifford circuit; a genetic algorithm
//! searches the discrete parameter space, and each candidate's energy is a
//! Monte-Carlo average of stabilizer expectations under the regime's Pauli
//! noise. The reference energy `E₀` for γ at 16+ qubits is the lowest
//! *noiseless* stabilizer energy found, exactly as the paper does
//! (Section 5.3.1).

use crate::regimes::ExecutionRegime;
use eftq_circuit::Ansatz;
use eftq_numerics::SeedSequence;
use eftq_optim::genetic::{minimize_genetic, GeneticConfig};
use eftq_pauli::PauliSum;
use eftq_stabilizer::{
    estimate_energy, estimate_energy_program_grouped, estimate_energy_threaded, GroupedObservable,
    NoiseTemplate, StabilizerNoise,
};

/// Configuration of a Clifford VQE run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CliffordVqeConfig {
    /// Genetic-search settings.
    pub ga: GeneticConfig,
    /// Monte-Carlo shots per energy evaluation.
    pub shots: usize,
    /// Root seed (feeds both GA and noise sampling).
    pub seed: u64,
}

impl Default for CliffordVqeConfig {
    fn default() -> Self {
        CliffordVqeConfig {
            ga: GeneticConfig {
                population: 24,
                generations: 30,
                ..GeneticConfig::default()
            },
            shots: 16,
            seed: 0xc11f_f0ed,
        }
    }
}

/// Outcome of a Clifford VQE run.
#[derive(Clone, Debug, PartialEq)]
pub struct CliffordVqeOutcome {
    /// Best (lowest) noisy energy found.
    pub best_energy: f64,
    /// The winning discrete parameter vector (`k` multipliers of π/2).
    pub best_genome: Vec<u8>,
    /// Best-so-far energy per generation.
    pub history: Vec<f64>,
}

/// Runs the genetic Clifford VQE under a stabilizer noise model.
///
/// The circuit + noise model compile *once* into a
/// [`NoiseTemplate`] before the search starts: every genome shares the
/// ansatz structure (layering, injection sites, probability classes), so
/// the per-genome fitness only re-resolves quarter-turn parities — see
/// [`clifford_vqe_with_template`] to share that compilation across
/// several searches (e.g. a sweep's grid points).
///
/// # Panics
///
/// Panics on ansatz/observable size mismatch.
pub fn clifford_vqe(
    ansatz: &Ansatz,
    observable: &PauliSum,
    noise: &StabilizerNoise,
    config: &CliffordVqeConfig,
) -> CliffordVqeOutcome {
    let template = NoiseTemplate::compile(ansatz.circuit(), noise);
    clifford_vqe_with_template(ansatz, observable, &template, config)
}

/// [`clifford_vqe`] with a *precompiled* noise template — the entry
/// point when many searches share one (ansatz structure, noise)
/// compilation, e.g. across the grid points and regimes of a sweep (key
/// it by [`NoiseTemplate::cache_key`] in an
/// `eftq_sweep::ArtifactCache`). Bit-identical to [`clifford_vqe`] on
/// the noise model the template was compiled from.
///
/// # Panics
///
/// Panics on ansatz/observable/template size mismatch.
pub fn clifford_vqe_with_template(
    ansatz: &Ansatz,
    observable: &PauliSum,
    template: &NoiseTemplate,
    config: &CliffordVqeConfig,
) -> CliffordVqeOutcome {
    assert_eq!(
        ansatz.num_qubits(),
        observable.num_qubits(),
        "ansatz/observable size mismatch"
    );
    assert_eq!(
        ansatz.num_qubits(),
        template.num_qubits(),
        "ansatz/template size mismatch"
    );
    let seeds = SeedSequence::new(config.seed);
    let shot_seed = seeds.derive("shots");
    let ga = GeneticConfig {
        seed: seeds.derive("ga").seed(),
        ..config.ga
    };
    let shots = config.shots.max(1);
    // Compile the QWC grouping once: every fitness evaluation shares it
    // (like the noise template), and the grouped kernel is bit-identical
    // to the per-term `estimate_energy_program` path it replaces.
    let grouped = GroupedObservable::compile(observable);
    let result = minimize_genetic(ansatz.num_params(), &ga, |genome| {
        let circuit = ansatz.bind_clifford(genome);
        let program = template.bind_clifford(genome);
        estimate_energy_program_grouped(
            &circuit,
            observable,
            &grouped,
            &program,
            template.meas_flip(),
            shots,
            shot_seed,
            1,
        )
        .energy
    });
    CliffordVqeOutcome {
        best_energy: result.best_fitness,
        best_genome: result.best_genome,
        history: result.history,
    }
}

/// Runs the Clifford VQE under an execution regime's noise.
pub fn clifford_vqe_in_regime(
    ansatz: &Ansatz,
    observable: &PauliSum,
    regime: &ExecutionRegime,
    config: &CliffordVqeConfig,
) -> CliffordVqeOutcome {
    clifford_vqe(ansatz, observable, &regime.stabilizer_noise(), config)
}

/// The lowest *noiseless* Clifford (stabilizer-state) energy found by the
/// genetic search — the paper's `E₀` proxy for 16+ qubit systems
/// (Section 5.3.1).
pub fn noiseless_reference_energy(
    ansatz: &Ansatz,
    observable: &PauliSum,
    config: &CliffordVqeConfig,
) -> f64 {
    clifford_vqe(ansatz, observable, &StabilizerNoise::noiseless(), config).best_energy
}

/// Unbiased noisy energy of one genome with an independent, larger shot
/// budget. Use this to re-evaluate a GA winner: the search itself sees
/// few-shot estimates and exploits their sampling noise, so the winning
/// *estimate* is optimistically biased — re-evaluation removes the bias.
///
/// Re-evaluation is a single large estimate, so — unlike the search,
/// where the GA parallelizes across genomes — the shot batches themselves
/// shard across `threads` workers (pass the GA's `threads` knob). The
/// result is bit-identical for every `threads` value.
pub fn reevaluate_genome(
    ansatz: &Ansatz,
    observable: &PauliSum,
    noise: &StabilizerNoise,
    genome: &[u8],
    shots: usize,
    seed: u64,
    threads: usize,
) -> f64 {
    let circuit = ansatz.bind_clifford(genome);
    estimate_energy_threaded(
        &circuit,
        observable,
        noise,
        shots,
        SeedSequence::new(seed).derive("reeval"),
        threads,
    )
    .energy
}

/// Exact noiseless energy of one genome (single deterministic shot).
pub fn genome_energy(ansatz: &Ansatz, observable: &PauliSum, genome: &[u8]) -> f64 {
    let circuit = ansatz.bind_clifford(genome);
    estimate_energy(
        &circuit,
        observable,
        &StabilizerNoise::noiseless(),
        1,
        SeedSequence::new(0),
    )
    .energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonians;
    use eftq_circuit::ansatz::{blocked_all_to_all, fully_connected_hea, linear_hea};

    fn quick() -> CliffordVqeConfig {
        // The frame-batched estimator makes shots nearly free, so the
        // quick config can afford enough of them that few-shot sampling
        // luck does not dominate the search.
        CliffordVqeConfig {
            ga: GeneticConfig {
                population: 16,
                generations: 20,
                ..GeneticConfig::default()
            },
            shots: 16,
            ..CliffordVqeConfig::default()
        }
    }

    #[test]
    fn finds_good_clifford_state_for_ising() {
        // J = 0.25 Ising: the product ground state |1…1⟩ is a stabilizer
        // state with energy close to the true ground energy.
        let h = hamiltonians::ising_1d(6, 0.25);
        let a = linear_hea(6, 1);
        let e_ref = noiseless_reference_energy(&a, &h, &quick());
        let e0 = h.ground_energy_default().unwrap();
        // Clifford states reach most of the gap for weakly coupled Ising.
        assert!(e_ref < -(0.8 * e0.abs()) + 0.0, "{e_ref} vs {e0}");
        assert!(e_ref >= e0 - 1e-9);
    }

    #[test]
    fn noisy_energy_is_above_noiseless() {
        // The *unbiased* noisy energy of the NISQ winner sits at or above
        // that genome's own noiseless energy (the raw search estimate may
        // dip below it — minimizing over few-shot estimates exploits
        // sampling noise; and a noisy search may find a genome the exact
        // noiseless search missed, so the floor is per-genome).
        let h = hamiltonians::ising_1d(6, 0.5);
        let a = linear_hea(6, 1);
        let noise = ExecutionRegime::nisq_default().stabilizer_noise();
        let nisq = clifford_vqe(&a, &h, &noise, &quick());
        let floor = noiseless_reference_energy(&a, &h, &quick()).min(genome_energy(
            &a,
            &h,
            &nisq.best_genome,
        ));
        let honest = reevaluate_genome(&a, &h, &noise, &nisq.best_genome, 512, 23, 2);
        assert!(honest >= floor - 0.2, "{honest} vs {floor}");
    }

    #[test]
    fn pqec_beats_nisq_on_heisenberg() {
        // Figure 12's mechanism at 8 qubits: pQEC's noise floor degrades a
        // good candidate far less than NISQ's. Both regimes evaluate the
        // *same* genome — the best one any search found — so the
        // comparison isolates the regimes' noise, not search luck.
        let h = hamiltonians::heisenberg_1d(8, 1.0);
        let a = fully_connected_hea(8, 1);
        let cfg = quick();
        let pqec = clifford_vqe_in_regime(&a, &h, &ExecutionRegime::pqec_default(), &cfg);
        let nisq = clifford_vqe_in_regime(&a, &h, &ExecutionRegime::nisq_default(), &cfg);
        let best = if genome_energy(&a, &h, &pqec.best_genome)
            <= genome_energy(&a, &h, &nisq.best_genome)
        {
            pqec.best_genome
        } else {
            nisq.best_genome
        };
        let e_pqec = reevaluate_genome(
            &a,
            &h,
            &ExecutionRegime::pqec_default().stabilizer_noise(),
            &best,
            512,
            19,
            1,
        );
        let e_nisq = reevaluate_genome(
            &a,
            &h,
            &ExecutionRegime::nisq_default().stabilizer_noise(),
            &best,
            512,
            19,
            1,
        );
        assert!(e_pqec < e_nisq, "pQEC {e_pqec} vs NISQ {e_nisq}");
    }

    #[test]
    fn blocked_ansatz_runs_in_clifford_mode() {
        let h = hamiltonians::ising_1d(8, 1.0);
        let a = blocked_all_to_all(8, 1);
        let out = clifford_vqe_in_regime(&a, &h, &ExecutionRegime::pqec_default(), &quick());
        assert!(out.best_energy.is_finite());
        assert_eq!(out.best_genome.len(), a.num_params());
    }

    #[test]
    fn genome_energy_matches_outcome() {
        let h = hamiltonians::ising_1d(4, 0.5);
        let a = linear_hea(4, 1);
        let out = clifford_vqe(
            &a,
            &h,
            &eftq_stabilizer::StabilizerNoise::noiseless(),
            &quick(),
        );
        let direct = genome_energy(&a, &h, &out.best_genome);
        assert!((out.best_energy - direct).abs() < 1e-12);
    }

    #[test]
    fn reevaluation_is_unbiased_vs_search_estimate() {
        let h = hamiltonians::heisenberg_1d(6, 1.0);
        let a = linear_hea(6, 1);
        let noise = ExecutionRegime::nisq_default().stabilizer_noise();
        let out = clifford_vqe(&a, &h, &noise, &quick());
        let reeval = reevaluate_genome(&a, &h, &noise, &out.best_genome, 200, 7, 1);
        // The few-shot search estimate is optimistically biased: the
        // honest re-evaluation is typically higher (never dramatically
        // lower).
        assert!(
            reeval >= out.best_energy - 0.5,
            "{reeval} vs {}",
            out.best_energy
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let h = hamiltonians::ising_1d(4, 1.0);
        let a = linear_hea(4, 1);
        let x = clifford_vqe_in_regime(&a, &h, &ExecutionRegime::nisq_default(), &quick());
        let y = clifford_vqe_in_regime(&a, &h, &ExecutionRegime::nisq_default(), &quick());
        assert_eq!(x.best_energy, y.best_energy);
        assert_eq!(x.best_genome, y.best_genome);
    }
}
