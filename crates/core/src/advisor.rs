//! The regime advisor: Figures 4–6 as a planning API.
//!
//! Given a workload and a device, rank every execution strategy the paper
//! studies (NISQ, pQEC, qec-conventional over the factory catalog,
//! qec-cultivation) by modeled iteration fidelity and produce a plan —
//! the library form of the `eft_resource_planner` example, so downstream
//! tools can automate the decision.

use crate::fidelity::{
    conventional_fidelity, cultivation_fidelity, nisq_fidelity, pqec_fidelity, Workload,
};
use eftq_qec::{DeviceModel, FACTORY_CATALOG};
use serde::{Deserialize, Serialize};

/// An execution strategy the advisor can recommend.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Run bare (no QEC).
    Nisq,
    /// Partial QEC at the given code distance.
    Pqec {
        /// Chosen code distance.
        distance: usize,
    },
    /// Clifford+T with the named distillation factory.
    Conventional {
        /// Factory name from the catalog.
        factory: String,
        /// Factories deployed.
        units: usize,
        /// Program code distance.
        distance: usize,
    },
    /// Clifford+T with magic-state cultivation.
    Cultivation {
        /// Cultivation units deployed.
        units: usize,
        /// Program code distance.
        distance: usize,
    },
}

/// One ranked row of the advisor's output.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankedStrategy {
    /// The strategy.
    pub strategy: Strategy,
    /// Modeled iteration fidelity.
    pub fidelity: f64,
}

/// The advisor's plan: every feasible strategy, best first.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegimePlan {
    /// Workload summary the plan was computed for.
    pub logical_qubits: usize,
    /// Device physical qubits.
    pub device_qubits: usize,
    /// Feasible strategies, sorted by descending fidelity.
    pub ranking: Vec<RankedStrategy>,
}

impl RegimePlan {
    /// The winning strategy.
    ///
    /// # Panics
    ///
    /// Never — NISQ is always feasible, so the ranking is non-empty.
    pub fn best(&self) -> &RankedStrategy {
        &self.ranking[0]
    }

    /// Fidelity advantage of the winner over the runner-up (1.0 when only
    /// one strategy is feasible).
    pub fn margin(&self) -> f64 {
        if self.ranking.len() < 2 {
            return 1.0;
        }
        self.ranking[0].fidelity / self.ranking[1].fidelity
    }
}

/// Ranks every strategy for `workload` on `device`.
pub fn plan(workload: &Workload, device: &DeviceModel) -> RegimePlan {
    let mut ranking: Vec<RankedStrategy> = Vec::new();
    ranking.push(RankedStrategy {
        strategy: Strategy::Nisq,
        fidelity: nisq_fidelity(workload, device.p_phys),
    });
    if let Some(r) = pqec_fidelity(workload, device) {
        ranking.push(RankedStrategy {
            strategy: Strategy::Pqec {
                distance: r.distance,
            },
            fidelity: r.fidelity,
        });
    }
    for factory in &FACTORY_CATALOG {
        if let Some(r) = conventional_fidelity(workload, device, factory) {
            ranking.push(RankedStrategy {
                strategy: Strategy::Conventional {
                    factory: factory.name.to_string(),
                    units: r.units,
                    distance: r.distance,
                },
                fidelity: r.fidelity,
            });
        }
    }
    if let Some(r) = cultivation_fidelity(workload, device) {
        ranking.push(RankedStrategy {
            strategy: Strategy::Cultivation {
                units: r.units,
                distance: r.distance,
            },
            fidelity: r.fidelity,
        });
    }
    ranking.sort_by(|a, b| b.fidelity.partial_cmp(&a.fidelity).unwrap());
    RegimePlan {
        logical_qubits: workload.logical_qubits,
        device_qubits: device.physical_qubits,
        ranking,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_workload_prefers_pqec() {
        let plan = plan(&Workload::fche(24, 1), &DeviceModel::eft_default());
        assert!(
            matches!(plan.best().strategy, Strategy::Pqec { .. }),
            "{plan:?}"
        );
        assert!(plan.margin() >= 1.0);
    }

    #[test]
    fn small_program_big_device_prefers_clifford_t() {
        let plan = plan(&Workload::fche(12, 1), &DeviceModel::new(60_000, 1e-3));
        assert!(
            matches!(
                plan.best().strategy,
                Strategy::Conventional { .. } | Strategy::Cultivation { .. }
            ),
            "{:?}",
            plan.best()
        );
    }

    #[test]
    fn nisq_always_present_and_ranking_sorted() {
        let plan = plan(&Workload::fche(40, 2), &DeviceModel::eft_default());
        assert!(plan
            .ranking
            .iter()
            .any(|r| matches!(r.strategy, Strategy::Nisq)));
        for w in plan.ranking.windows(2) {
            assert!(w[0].fidelity >= w[1].fidelity);
        }
    }

    #[test]
    fn tiny_device_leaves_only_nisq() {
        let plan = plan(&Workload::fche(40, 1), &DeviceModel::new(300, 1e-3));
        assert_eq!(plan.ranking.len(), 1);
        assert!(matches!(plan.best().strategy, Strategy::Nisq));
        assert_eq!(plan.margin(), 1.0);
    }

    #[test]
    fn plan_debug_form_is_informative() {
        let plan = plan(&Workload::fche(16, 1), &DeviceModel::eft_default());
        let text = format!("{plan:?}");
        assert!(text.contains("Pqec"));
        assert!(text.contains("ranking"));
    }
}
