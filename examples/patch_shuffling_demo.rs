//! Patch shuffling in action: the repeat-until-success `Rz` pipeline of
//! Sections 3.1 / 4.2 / 9.
//!
//! Demonstrates (1) the runtime RUS expansion of Figure 2(B) and its
//! `E[g] = 2` attempt statistics, (2) the Section-9 feasibility proof for
//! shuffling at the EFT operating point, and (3) the Figure-8 spacetime
//! comparison against naive backup provisioning.
//!
//! ```sh
//! cargo run --release --example patch_shuffling_demo
//! ```

use eftq_circuit::transpile::{expand_rus, EXPECTED_INJECTIONS_PER_ROTATION};
use eftq_circuit::Circuit;
use eftq_layout::shuffling::{naive_backup_volume, patch_shuffling_volume};
use eftq_qec::InjectionModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. Runtime RUS expansion -------------------------------------
    let mut circuit = Circuit::new(4);
    for q in 0..4 {
        circuit.rz(q, 0.3 + 0.1 * q as f64);
    }
    println!("logical circuit: 4 Rz rotations (Figure 2(A))");
    let mut rng = StdRng::seed_from_u64(42);
    let expansion = expand_rus(&circuit, &mut rng);
    println!(
        "one runtime sample (Figure 2(B)): {} injections for {} rotations",
        expansion.injections, expansion.logical_rotations
    );

    // Average over many samples → E[g] = 2.
    let mut total = 0usize;
    let samples = 2000;
    for seed in 0..samples {
        let mut rng = StdRng::seed_from_u64(seed);
        total += expand_rus(&circuit, &mut rng).injections;
    }
    let mean = total as f64 / (samples as f64 * 4.0);
    println!(
        "mean injections per rotation over {samples} samples = {mean:.3} (theory: {EXPECTED_INJECTIONS_PER_ROTATION})"
    );

    // --- 2. Section-9 feasibility --------------------------------------
    let inj = InjectionModel::eft_default();
    println!("\nSection-9 proof at d = 11, p = 1e-3:");
    println!("  p_pass = {:.6}", inj.post_selection_pass_probability());
    println!(
        "  N_trials = {:.3} <= 2d = {} -> injection hides inside consumption",
        inj.trials_to_one_sigma(),
        inj.consumption_cycles()
    );
    println!(
        "  feasible for p <= alpha = {:.6} (we are at p = {})",
        inj.shuffle_alpha(),
        inj.p_phys()
    );

    // --- 3. Figure-8 comparison ----------------------------------------
    println!("\nspacetime volume (physical qubit-cycles), 40-qubit FCHE iteration:");
    let shuffle = patch_shuffling_volume(40, 1, &inj);
    println!(
        "  patch shuffling : {:>12.3e}  ({} tiles, {:.0} cycles, 0 stalls)",
        shuffle.volume, shuffle.tiles, shuffle.cycles
    );
    for b in 1..=4 {
        let naive = naive_backup_volume(40, 1, b, &inj);
        println!(
            "  naive b = {b}     : {:>12.3e}  ({} tiles, {:.0} cycles, {:.1} stall cycles)",
            naive.volume, naive.tiles, naive.cycles, naive.stall_cycles
        );
    }
    println!("\nshuffling wins on both axes: fewer reserved patches and zero expected stalls.");
}
