//! The error-mitigation toolkit that transitions from NISQ to EFT
//! (Section 7): VarSaw measurement mitigation, zero-noise extrapolation,
//! and the Optimal-Parameter-Resilience transfer, all on one workload.
//!
//! ```sh
//! cargo run --release --example mitigation_toolkit
//! ```

use eft_vqa::hamiltonians::heisenberg_1d;
use eft_vqa::opr::parameter_transfer;
use eft_vqa::vqe::{run_vqe, VqeConfig};
use eft_vqa::zne::{energy_at_scale, zne_energy};
use eft_vqa::ExecutionRegime;
use eftq_circuit::ansatz::fully_connected_hea;

fn main() {
    let n = 5;
    let h = heisenberg_1d(n, 1.0);
    let e0 = h.ground_energy_default().unwrap();
    let ansatz = fully_connected_hea(n, 1);
    let config = VqeConfig {
        max_iters: 200,
        restarts: 3,
        ..VqeConfig::default()
    };
    println!("== mitigation toolkit on the {n}-qubit Heisenberg chain (E0 = {e0:.4}) ==");

    for regime in [
        ExecutionRegime::nisq_default(),
        ExecutionRegime::pqec_default(),
    ] {
        println!("\n-- {} --", regime.name());

        // 1. VarSaw: measurement mitigation inside the VQE loop.
        let plain = run_vqe(&ansatz, &h, &regime, &config);
        let varsaw = run_vqe(
            &ansatz,
            &h,
            &regime,
            &VqeConfig {
                mitigate_measurement: true,
                ..config
            },
        );
        println!(
            "VarSaw      : plain {:.4} -> mitigated {:.4}",
            plain.best_energy, varsaw.best_energy
        );

        // 2. ZNE on the converged parameters.
        let zne = zne_energy(&ansatz, &plain.best_params, &regime, &h, &[1.0, 1.5, 2.0]);
        let ideal = energy_at_scale(&ansatz, &plain.best_params, &regime, &h, 0.0);
        println!(
            "ZNE         : noisy {:.4} -> extrapolated {:.4} (noiseless {:.4})",
            zne.energies[0], zne.extrapolated, ideal
        );

        // 3. OPR: do the noisy-optimal parameters transfer?
        let opr = parameter_transfer(&ansatz, &h, &regime, &config, 25);
        println!(
            "OPR transfer: noiseless energy of noisy optimum {:.4} vs random {:.4} -> {}",
            opr.transferred,
            opr.random_baseline,
            if opr.opr_holds() {
                "OPR holds"
            } else {
                "OPR fails"
            }
        );
        println!(
            "              transfer closes {:.0}% of the random-to-ground gap",
            100.0 * opr.transfer_quality()
        );
    }
    println!("\nSection 7's point: these mitigations compose with pQEC rather than");
    println!("compete with it — the pQEC rows start from a much better baseline.");
}
