//! Chemistry workload: a 12-qubit molecular Hamiltonian at two bond
//! lengths, solved with the Clifford-restricted VQE under NISQ and pQEC.
//!
//! This mirrors the paper's chemistry benchmarks (Section 5.1.2) — H₂O,
//! H₆ and LiH at 1 Å and 4.5 Å — using the synthetic molecular-structure
//! generator (see DESIGN.md for the PySCF substitution). The 12-qubit
//! density matrix is too slow for a demo, so we follow the paper's
//! large-system methodology (Section 5.2.2): restrict rotations to
//! multiples of π/2 and search the Clifford space with a genetic
//! algorithm on the stabilizer simulator.
//!
//! ```sh
//! cargo run --release --example chemistry_dissociation
//! ```

use eft_vqa::clifford_vqe::{
    clifford_vqe_in_regime, noiseless_reference_energy, CliffordVqeConfig,
};
use eft_vqa::hamiltonians::{molecular, Molecule, BOND_LENGTHS};
use eft_vqa::{relative_improvement, ExecutionRegime};
use eftq_circuit::ansatz::fully_connected_hea;
use eftq_optim::GeneticConfig;

fn main() {
    let molecule = Molecule::LiH;
    println!(
        "== {} dissociation study ({} Pauli terms on {} qubits) ==\n",
        molecule.name(),
        molecule.term_count(),
        molecule.num_qubits()
    );

    let config = CliffordVqeConfig {
        ga: GeneticConfig {
            population: 24,
            generations: 25,
            threads: 4,
            ..GeneticConfig::default()
        },
        shots: 8,
        ..CliffordVqeConfig::default()
    };

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "bond/A", "E0 (exact)", "E0 (Cliff)", "E_pQEC", "E_NISQ", "gamma"
    );
    for &bond in &BOND_LENGTHS {
        let h = molecular(molecule, bond);
        let ansatz = fully_connected_hea(h.num_qubits(), 1);
        // Exact reference via matrix-free Lanczos (12 qubits = 4096 dim).
        let e_exact = h.ground_energy_default().expect("Lanczos");
        // Clifford reference — what the paper uses at 16+ qubits.
        let e_clifford = noiseless_reference_energy(&ansatz, &h, &config);
        let pqec = clifford_vqe_in_regime(&ansatz, &h, &ExecutionRegime::pqec_default(), &config);
        let nisq = clifford_vqe_in_regime(&ansatz, &h, &ExecutionRegime::nisq_default(), &config);
        let gamma = relative_improvement(e_clifford, pqec.best_energy, nisq.best_energy);
        println!(
            "{bond:>8.1} {e_exact:>12.4} {e_clifford:>12.4} {:>12.4} {:>12.4} {gamma:>7.2}x",
            pqec.best_energy, nisq.best_energy
        );
    }
    println!("\nStretching the bond suppresses hopping terms, flattening the landscape —");
    println!("exactly the regime where error correction pays off most for VQE.");
}
