//! EFT deployment planner: given a VQA size and a device, answer from
//! the planner's surrogate surfaces first, then cross-check with the
//! exact advisor and print the full per-strategy breakdown.
//!
//! This is the "which regime should my program use?" workflow that
//! Figures 4-6 motivate — and the same answer path the
//! `eft_planner_serve` service exposes over HTTP: a microsecond
//! surrogate lookup (interpolated over the advisor grid), degraded with
//! a warning when the query leaves the sampled region, backed by exact
//! recomputation when time allows.
//!
//! ```sh
//! cargo run --release --example eft_resource_planner -- [logical_qubits] [device_qubits]
//! ```

use std::time::Instant;

use eft_vqa::advisor::plan;
use eft_vqa::fidelity::{
    conventional_fidelity, cultivation_fidelity, nisq_fidelity, pqec_fidelity, Workload,
};
use eftq_layout::layouts::LayoutModel;
use eftq_planner::index::{metric_strategy, ADVISOR_METRICS, ADVISOR_P_PHYS, ADVISOR_SPEC};
use eftq_planner::SurfaceIndex;
use eftq_qec::{DeviceModel, FACTORY_CATALOG};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let device_qubits: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let device = DeviceModel::new(device_qubits, ADVISOR_P_PHYS);
    let workload = Workload::fche(n, 1);

    println!("== EFT resource plan: {n}-qubit FCHE VQA on a {device_qubits}-qubit device ==\n");

    // The surrogate index the planner service answers from: the advisor
    // grid evaluated exactly once, then interpolated per query.
    let t_fit = Instant::now();
    let mut index = SurfaceIndex::new();
    index
        .add_advisor_grid()
        .expect("advisor grid always builds");
    let fit_time = t_fit.elapsed();

    let t_query = Instant::now();
    let mut surrogate_best: Option<(&str, f64)> = None;
    let mut clamped = false;
    for metric in ADVISOR_METRICS {
        let surface = index
            .get(&format!("{ADVISOR_SPEC}/{metric}"))
            .and_then(|f| f.surface(&[]))
            .expect("advisor surfaces registered");
        let hit = surface.eval(&[device_qubits as f64, n as f64]);
        clamped |= hit.clamped;
        if surrogate_best.is_none() || hit.value > surrogate_best.unwrap().1 {
            surrogate_best = Some((metric, hit.value));
        }
    }
    let query_time = t_query.elapsed();
    let (surrogate_metric, surrogate_fidelity) = surrogate_best.expect("metrics non-empty");
    println!(
        "surrogate answer: {} (fidelity {:.4}) in {:.1?} — grid fitted in {:.0?}{}",
        metric_strategy(surrogate_metric),
        surrogate_fidelity,
        query_time,
        fit_time,
        if clamped {
            "\n  [degraded: query outside the sampled grid, clamped extrapolation]"
        } else {
            ""
        }
    );

    // Layout footprint.
    let layout = LayoutModel::proposed();
    println!(
        "\nproposed layout: {} tiles, packing efficiency {:.1}%, {} parallel injection sites",
        layout.total_tiles(n),
        100.0 * layout.packing_efficiency(n),
        layout.parallel_injection_sites(n)
    );

    // Exact per-strategy breakdown (what the surrogate interpolates).
    let nisq = nisq_fidelity(&workload, device.p_phys);
    println!("\n{:<28} fidelity {:.4}", "NISQ (no QEC)", nisq);

    match pqec_fidelity(&workload, &device) {
        Some(r) => println!(
            "{:<28} fidelity {:.4}   (d = {}, {} physical qubits)",
            "pQEC (paper's proposal)", r.fidelity, r.distance, r.physical_qubits
        ),
        None => println!("{:<28} does not fit", "pQEC"),
    }

    for factory in &FACTORY_CATALOG {
        match conventional_fidelity(&workload, &device, factory) {
            Some(r) => println!(
                "{:<28} fidelity {:.4}   (d = {}, {} factories, {:.0} cycles, {} T)",
                format!("Clifford+T {}", factory.name),
                r.fidelity,
                r.distance,
                r.units,
                r.cycles,
                r.t_count
            ),
            None => println!(
                "{:<28} does not fit",
                format!("Clifford+T {}", factory.name)
            ),
        }
    }

    match cultivation_fidelity(&workload, &device) {
        Some(r) => println!(
            "{:<28} fidelity {:.4}   (d = {}, {} units)",
            "Clifford+T cultivation", r.fidelity, r.distance, r.units
        ),
        None => println!("{:<28} does not fit", "Clifford+T cultivation"),
    }

    // Exact recommendation, and how far the surrogate was from it.
    let exact = plan(&workload, &device);
    let best = exact.best();
    println!(
        "\nrecommendation (exact): {:?} (iteration fidelity {:.4}, margin {:.4})",
        best.strategy,
        best.fidelity,
        exact.margin()
    );
    println!(
        "surrogate vs exact:     {:+.2e} fidelity error{}",
        surrogate_fidelity - best.fidelity,
        if clamped { " (extrapolated)" } else { "" }
    );
}
