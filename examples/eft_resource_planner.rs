//! EFT deployment planner: given a VQA size and a device, compare every
//! execution strategy the paper studies and print a recommendation.
//!
//! This is the "which regime should my program use?" workflow that
//! Figures 4-6 motivate: pQEC at the device frontier, conventional
//! distillation when space is abundant, cultivation in between.
//!
//! ```sh
//! cargo run --release --example eft_resource_planner -- [logical_qubits] [device_qubits]
//! ```

use eft_vqa::fidelity::{
    conventional_fidelity, cultivation_fidelity, nisq_fidelity, pqec_fidelity, Workload,
};
use eftq_layout::layouts::LayoutModel;
use eftq_qec::{DeviceModel, FACTORY_CATALOG};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let device_qubits: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let device = DeviceModel::new(device_qubits, 1e-3);
    let workload = Workload::fche(n, 1);

    println!("== EFT resource plan: {n}-qubit FCHE VQA on a {device_qubits}-qubit device ==\n");

    // Layout footprint.
    let layout = LayoutModel::proposed();
    println!(
        "proposed layout: {} tiles, packing efficiency {:.1}%, {} parallel injection sites",
        layout.total_tiles(n),
        100.0 * layout.packing_efficiency(n),
        layout.parallel_injection_sites(n)
    );

    // NISQ baseline.
    let nisq = nisq_fidelity(&workload, device.p_phys);
    println!("\n{:<28} fidelity {:.4}", "NISQ (no QEC)", nisq);

    // pQEC.
    match pqec_fidelity(&workload, &device) {
        Some(r) => println!(
            "{:<28} fidelity {:.4}   (d = {}, {} physical qubits)",
            "pQEC (paper's proposal)", r.fidelity, r.distance, r.physical_qubits
        ),
        None => println!("{:<28} does not fit", "pQEC"),
    }

    // Conventional distillation, every factory.
    for factory in &FACTORY_CATALOG {
        match conventional_fidelity(&workload, &device, factory) {
            Some(r) => println!(
                "{:<28} fidelity {:.4}   (d = {}, {} factories, {:.0} cycles, {} T)",
                format!("Clifford+T {}", factory.name),
                r.fidelity,
                r.distance,
                r.units,
                r.cycles,
                r.t_count
            ),
            None => println!(
                "{:<28} does not fit",
                format!("Clifford+T {}", factory.name)
            ),
        }
    }

    // Cultivation.
    match cultivation_fidelity(&workload, &device) {
        Some(r) => println!(
            "{:<28} fidelity {:.4}   (d = {}, {} units)",
            "Clifford+T cultivation", r.fidelity, r.distance, r.units
        ),
        None => println!("{:<28} does not fit", "Clifford+T cultivation"),
    }

    // Recommendation.
    let mut best_name = "NISQ";
    let mut best = nisq;
    if let Some(r) = pqec_fidelity(&workload, &device) {
        if r.fidelity > best {
            best = r.fidelity;
            best_name = "pQEC";
        }
    }
    for factory in &FACTORY_CATALOG {
        if let Some(r) = conventional_fidelity(&workload, &device, factory) {
            if r.fidelity > best {
                best = r.fidelity;
                best_name = factory.name;
            }
        }
    }
    if let Some(r) = cultivation_fidelity(&workload, &device) {
        if r.fidelity > best {
            best = r.fidelity;
            best_name = "cultivation";
        }
    }
    println!("\nrecommendation: {best_name} (iteration fidelity {best:.4})");
}
