//! Quickstart: run the same VQE under NISQ and pQEC execution and measure
//! the paper's γ relative improvement (Equation 3).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eft_vqa::hamiltonians::ising_1d;
use eft_vqa::vqe::{run_vqe, VqeConfig};
use eft_vqa::{relative_improvement, ExecutionRegime};
use eftq_circuit::ansatz::fully_connected_hea;

fn main() {
    // 1. A benchmark Hamiltonian: the 6-qubit transverse-field Ising chain
    //    with coupling J = 0.5 (Equation 1 of the paper).
    let hamiltonian = ising_1d(6, 0.5);
    let e0 = hamiltonian
        .ground_energy_default()
        .expect("Lanczos converges on a 64-dimensional problem");
    println!("exact ground energy      E0     = {e0:.6}");

    // 2. The ansatz: a depth-1 fully-connected hardware-efficient circuit
    //    (the paper's main workload).
    let ansatz = fully_connected_hea(6, 1);
    println!(
        "ansatz: FCHE, {} qubits, {} parameters, {} CNOTs",
        ansatz.num_qubits(),
        ansatz.num_params(),
        ansatz.circuit().counts().cx
    );

    // 3. Run VQE under both regimes. The regime supplies the full noise
    //    model of Section 5.2.1 (depolarizing + relaxation for NISQ;
    //    logical rates + injected rotations for pQEC).
    let config = VqeConfig {
        max_iters: 400,
        restarts: 4,
        ..VqeConfig::default()
    };
    let nisq = run_vqe(
        &ansatz,
        &hamiltonian,
        &ExecutionRegime::nisq_default(),
        &config,
    );
    let pqec = run_vqe(
        &ansatz,
        &hamiltonian,
        &ExecutionRegime::pqec_default(),
        &config,
    );
    println!("best energy under NISQ          = {:.6}", nisq.best_energy);
    println!("best energy under pQEC          = {:.6}", pqec.best_energy);

    // 4. The γ metric: how much closer pQEC gets to the exact answer.
    let gamma = relative_improvement(e0, pqec.best_energy, nisq.best_energy);
    println!("gamma(pQEC/NISQ)                = {gamma:.2}x");
    assert!(gamma > 1.0, "pQEC should beat NISQ on this workload");
    println!("\npQEC closed {gamma:.1}x more of the gap to the exact ground energy than NISQ did.");
}
