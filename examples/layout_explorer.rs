//! Visualize the paper's Figure-3 layout and its scaling.
//!
//! Renders the placed patch grid (D = data, . = routing, M = magic-state
//! injection site), and reports packing efficiency, injection parallelism
//! and physical footprint as the block parameter grows.
//!
//! ```sh
//! cargo run --release --example layout_explorer -- [logical_qubits]
//! ```

use eftq_layout::grid::{PatchGrid, TileRole};
use eftq_layout::layouts::{LayoutKind, LayoutModel};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let grid = PatchGrid::for_qubits(n);
    let k = grid.block_parameter();

    println!("== Figure-3 layout hosting {n} logical qubits (k = {k}) ==\n");
    println!("{grid}");
    println!(
        "data patches    : {} (capacity {} logical qubits)",
        grid.count(TileRole::Data),
        4 * k + 4
    );
    println!("routing patches : {}", grid.count(TileRole::Routing));
    println!(
        "magic sites     : {} (parallel Rz consumptions)",
        grid.count(TileRole::Magic)
    );
    println!(
        "packing         : {:.1}%  (paper: → 67% for large k)",
        100.0 * grid.packing_efficiency()
    );
    println!(
        "physical qubits : {} at d = 11",
        LayoutModel::proposed().physical_qubits(n, 11)
    );

    println!("\nscaling of the packing efficiency:");
    println!("{:>6} {:>8} {:>10} {:>10}", "k", "qubits", "tiles", "PE");
    for k in [1usize, 2, 4, 8, 16, 32, 64] {
        let g = PatchGrid::figure3(k);
        println!(
            "{k:>6} {:>8} {:>10} {:>9.1}%",
            4 * k + 4,
            g.total_tiles(),
            100.0 * g.packing_efficiency()
        );
    }

    println!("\nfootprint against the baseline layouts (tiles for {n} qubits):");
    for kind in LayoutKind::ALL {
        let m = if kind == LayoutKind::Proposed {
            LayoutModel::proposed()
        } else {
            LayoutModel::baseline(kind)
        };
        println!(
            "  {:<14} {:>5} tiles   PE {:>5.1}%",
            kind.name(),
            m.total_tiles(n),
            100.0 * m.packing_efficiency(n)
        );
    }
}
