//! EFT ansatz design assistant: the Section-4.4 CNOT:Rz rule plus the
//! Table-2 schedule comparison, for a user-chosen problem size.
//!
//! ```sh
//! cargo run --release --example ansatz_designer -- [qubits]
//! ```

use eft_vqa::crossover::{
    blocked_cx_to_rz_ratio, fche_cx_to_rz_ratio, linear_cx_to_rz_ratio, RATIO_THRESHOLD,
};
use eftq_circuit::ansatz::{blocked_all_to_all, blocked_block_parameter, fully_connected_hea};
use eftq_circuit::AnsatzKind;
use eftq_layout::layouts::LayoutModel;
use eftq_layout::schedule::{schedule_ansatz, ScheduleConfig};

fn verdict(ratio: f64) -> &'static str {
    if ratio >= RATIO_THRESHOLD {
        "prefer pQEC"
    } else {
        "prefer NISQ at depth"
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    println!("== EFT ansatz design for {n} qubits ==\n");

    println!(
        "Section-4.4 rule: pQEC wins at depth when CNOT growth > {RATIO_THRESHOLD} x Rz growth\n"
    );
    println!("{:<22} {:>8}   verdict", "ansatz", "ratio");
    println!(
        "{:<22} {:>8.3}   {}",
        "linear HEA",
        linear_cx_to_rz_ratio(n),
        verdict(linear_cx_to_rz_ratio(n))
    );
    println!(
        "{:<22} {:>8.3}   {}",
        "fully-connected HEA",
        fche_cx_to_rz_ratio(n),
        verdict(fche_cx_to_rz_ratio(n))
    );
    if blocked_block_parameter(n).is_some() {
        println!(
            "{:<22} {:>8.3}   {}",
            "blocked_all_to_all",
            blocked_cx_to_rz_ratio(n),
            verdict(blocked_cx_to_rz_ratio(n))
        );

        // Schedule comparison (Table 2).
        let cfg = ScheduleConfig::default();
        let ours = LayoutModel::proposed();
        let blocked = schedule_ansatz(AnsatzKind::BlockedAllToAll, n, 1, &ours, &cfg);
        let fche = schedule_ansatz(AnsatzKind::FullyConnectedHea, n, 1, &ours, &cfg);
        println!("\nschedule per layer on the proposed layout (Table 2):");
        println!(
            "  blocked_all_to_all: {:>5} cycles   ({} CNOTs, {} rotations)",
            blocked.cycles,
            blocked_all_to_all(n, 1).circuit().counts().cx,
            blocked.rotations
        );
        println!(
            "  FCHE              : {:>5} cycles   ({} CNOTs, {} rotations)",
            fche.cycles,
            fully_connected_hea(n, 1).circuit().counts().cx,
            fche.rotations
        );
        println!(
            "  speedup           : {:.2}x",
            fche.cycles as f64 / blocked.cycles as f64
        );
    } else {
        println!(
            "{:<22} {:>8}   (needs n = 4k+4; nearest: {})",
            "blocked_all_to_all",
            "-",
            ((n / 4).max(2)) * 4 + 4 - 4
        );
    }
    println!("\nExpressivity caveat (Section 6.2): the blocked ansatz matched FCHE on Ising");
    println!("models but lost on J=1 Heisenberg — validate expressibility per Hamiltonian.");
}
