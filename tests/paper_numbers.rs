//! Integration tests pinning every number the paper states explicitly.
//!
//! These are the reproduction's contract: if any of them fails, the
//! regenerated tables/figures no longer correspond to the published ones.

use eft_vqa::crossover::{blocked_crossover_qubits, blocked_cx_to_rz_ratio};
use eftq_circuit::synthesis::ross_selinger_t_count;
use eftq_circuit::AnsatzKind;
use eftq_layout::layouts::{LayoutKind, LayoutModel};
use eftq_layout::schedule::{schedule_ansatz, spacetime_ratio, ScheduleConfig};
use eftq_qec::{factory::factory_by_distances, DeviceModel, InjectionModel, SurfaceCodeModel};

#[test]
fn table2_exact_cycle_counts() {
    let cfg = ScheduleConfig::default();
    let ours = LayoutModel::proposed();
    let expect = [(20usize, 71usize, 131usize), (40, 121, 271), (60, 171, 411)];
    for (n, blocked, fche) in expect {
        assert_eq!(
            schedule_ansatz(AnsatzKind::BlockedAllToAll, n, 1, &ours, &cfg).cycles,
            blocked
        );
        assert_eq!(
            schedule_ansatz(AnsatzKind::FullyConnectedHea, n, 1, &ours, &cfg).cycles,
            fche
        );
    }
}

#[test]
fn section9_proof_numbers() {
    let inj = InjectionModel::eft_default();
    assert!((inj.post_selection_pass_probability() - 0.760240).abs() < 1e-6);
    assert!((inj.trials_to_one_sigma() - 1.959).abs() < 2e-3);
    assert!((inj.high_probability() - 0.9391).abs() < 2e-3);
    assert!((inj.shuffle_alpha() - 0.003811).abs() < 5e-6);
    assert!((inj.shuffle_beta() - 0.996189).abs() < 5e-6);
    assert!(inj.shuffle_feasible());
}

#[test]
fn injection_error_is_23p_over_30() {
    let inj = InjectionModel::eft_default();
    assert!((inj.rz_error_rate() - 23.0 * 1e-3 / 30.0).abs() < 1e-15);
    // "0.76 × 10−3" as quoted in Section 4.4.
    assert!((inj.rz_error_rate() - 0.7667e-3).abs() < 1e-7);
}

#[test]
fn surface_code_eft_point() {
    // "error rates ... all approximately 1e-7" for d = 11, p = 1e-3.
    let code = SurfaceCodeModel::eft_default();
    assert!((code.logical_error_rate() - 1e-7).abs() < 1e-12);
}

#[test]
fn factory_catalog_paper_rows() {
    // "(15-to-1)7,3,3 requires 810 physical qubits and takes 22 clock
    //  cycles ... T states with an error rate of 5.4e-4."
    let small = factory_by_distances(7, 3, 3).unwrap();
    assert_eq!(small.physical_qubits, 810);
    assert_eq!(small.cycles_per_batch, 22);
    assert!((small.output_error_at_1e3 - 5.4e-4).abs() < 1e-12);
    // "(15-to-1)17,7,7 ... (4.5 × 10−8) ... up to 46% of physical qubits
    //  and 42 clock cycles."
    let big = factory_by_distances(17, 7, 7).unwrap();
    assert_eq!(big.cycles_per_batch, 42);
    assert!((big.output_error_at_1e3 - 4.5e-8).abs() < 1e-20);
    assert!(big.physical_qubits as f64 / 10_000.0 > 0.45);
}

#[test]
fn packing_efficiency_formula_and_limit() {
    // PE = 4(k+1)/(6(k+2)) → ~66-67% for large k (abstract + Section 4.1).
    let ours = LayoutModel::proposed();
    for k in 1..40usize {
        let n = 4 * k + 4;
        let want = 4.0 * (k as f64 + 1.0) / (6.0 * (k as f64 + 2.0));
        assert!((ours.packing_efficiency(n) - want).abs() < 1e-12, "k = {k}");
    }
    assert!(ours.packing_efficiency(4 * 100 + 4) > 0.65);
}

#[test]
fn section44_crossover_thirteen() {
    assert_eq!(blocked_crossover_qubits(), 13);
    // N = 20 ratio: 20/8 − 5/4 + 5/20 = 1.5.
    assert!((blocked_cx_to_rz_ratio(20) - 1.5).abs() < 1e-12);
}

#[test]
fn gridsynth_t_counts_in_paper_regime() {
    // "hundreds of T gates per rotation for reasonable accuracy": the
    // synthesized word at 1e-10 is ~200 gates (97 T + interleaving).
    assert_eq!(ross_selinger_t_count(1e-10), 98);
    assert!(eftq_circuit::synthesis::synthesized_word_length(1e-10) >= 190);
}

#[test]
fn table1_every_ratio_at_least_one() {
    for kind in [
        AnsatzKind::LinearHea,
        AnsatzKind::FullyConnectedHea,
        AnsatzKind::BlockedAllToAll,
    ] {
        for baseline in [
            LayoutKind::Compact,
            LayoutKind::Intermediate,
            LayoutKind::Fast,
            LayoutKind::Grid,
        ] {
            let ratios: Vec<f64> = (8..=164)
                .step_by(4)
                .map(|n| spacetime_ratio(kind, n, 1, baseline))
                .collect();
            let avg = eftq_numerics::stats::mean(&ratios);
            assert!(avg >= 1.0, "{kind:?} on {baseline:?}: {avg}");
        }
    }
}

#[test]
fn eft_device_definition() {
    // "~10000 qubits and physical error rates ~1e-3" (Section 1).
    let d = DeviceModel::eft_default();
    assert_eq!(d.physical_qubits, 10_000);
    assert_eq!(d.p_phys, 1e-3);
}

#[test]
fn chemistry_term_counts() {
    use eft_vqa::hamiltonians::{molecular, Molecule};
    // "H2O — 367 terms; H6 — 919 terms; LiH — 631 terms" (Section 5.1.2).
    assert_eq!(molecular(Molecule::H2O, 1.0).num_terms(), 367);
    assert_eq!(molecular(Molecule::H6, 4.5).num_terms(), 919);
    assert_eq!(molecular(Molecule::LiH, 1.0).num_terms(), 631);
}
