//! Integration tests for the extensions built from the paper's discussion
//! and future-work sections (DESIGN.md "Extensions" table).

use eft_vqa::hamiltonians::ising_1d;
use eft_vqa::opr::parameter_transfer;
use eft_vqa::vqe::VqeConfig;
use eft_vqa::zne::{energy_at_scale, zne_energy};
use eft_vqa::ExecutionRegime;
use eftq_circuit::ansatz::fully_connected_hea;
use eftq_circuit::qasm::to_qasm;
use eftq_circuit::AnsatzKind;
use eftq_layout::grid::{PatchGrid, TileRole};
use eftq_layout::timeline::ansatz_timeline;
use eftq_layout::ScheduleConfig;
use eftq_numerics::SeedSequence;
use eftq_qec::{InjectionModel, MultiRoundInjection};
use eftq_statesim::sampling::estimate_energy_sampled;
use eftq_statesim::trajectory::{estimate_energy_trajectories, TrajectoryNoise};
use eftq_statesim::{ReadoutModel, StateVector};

/// ZNE composes with pQEC: extrapolating the injected-rotation channel
/// recovers most of the noiseless energy.
#[test]
fn zne_composes_with_pqec() {
    let h = ising_1d(5, 1.0);
    let a = fully_connected_hea(5, 1);
    let params: Vec<f64> = (0..a.num_params()).map(|i| 0.19 * i as f64).collect();
    let regime = ExecutionRegime::pqec_default();
    let ideal = energy_at_scale(&a, &params, &regime, &h, 0.0);
    let noisy = energy_at_scale(&a, &params, &regime, &h, 1.0);
    let zne = zne_energy(&a, &params, &regime, &h, &[1.0, 2.0, 3.0]);
    assert!((zne.extrapolated - ideal).abs() < (noisy - ideal).abs());
}

/// OPR transfer holds under both regimes on the Ising workload.
#[test]
fn opr_transfer_holds() {
    let h = ising_1d(4, 0.5);
    let a = fully_connected_hea(4, 1);
    let config = VqeConfig {
        max_iters: 150,
        restarts: 2,
        ..VqeConfig::default()
    };
    for regime in [
        ExecutionRegime::pqec_default(),
        ExecutionRegime::nisq_default(),
    ] {
        let r = parameter_transfer(&a, &h, &regime, &config, 15);
        assert!(r.opr_holds(), "{}: {r:?}", regime.name());
    }
}

/// Multi-round injection: three rounds cut the pQEC rotation error ~3x
/// while staying shuffle-feasible — a better pQEC operating point.
#[test]
fn multi_round_injection_improves_pqec_budget() {
    let base = InjectionModel::eft_default();
    let three = MultiRoundInjection::new(base, 3);
    assert!(three.rz_error_rate() < base.rz_error_rate() / 3.0);
    assert!(three.shuffle_feasible());
    // The paper's headline rotation budget at n = 24 (192 injections)
    // drops proportionally.
    let budget_base = 192.0 * base.rz_error_rate();
    let budget_three = 192.0 * three.rz_error_rate();
    assert!(budget_three < budget_base / 3.0);
}

/// Sampled estimation through readout error + mitigation matches the
/// exact value within shot noise.
#[test]
fn sampled_estimation_pipeline() {
    let a = fully_connected_hea(4, 1);
    let params: Vec<f64> = (0..a.num_params()).map(|i| 0.23 * i as f64).collect();
    let psi = StateVector::from_circuit(&a.bind(&params));
    let h = ising_1d(4, 1.0);
    let exact = psi.expectation(&h);
    let model = ReadoutModel::uniform(4, 0.05, 0.05);
    let mut rng = SeedSequence::new(77).rng();
    let est = estimate_energy_sampled(&psi, &h, 8000, Some(&model), true, &mut rng);
    assert!(
        (est.energy - exact).abs() < 0.15,
        "{} vs {exact}",
        est.energy
    );
    assert!(est.groups >= 2);
}

/// Trajectory sampling agrees with the regime's stabilizer Monte-Carlo on
/// a Clifford-bound ansatz (two independent noisy substrates, same
/// channel semantics).
#[test]
fn trajectory_agrees_with_stabilizer_on_clifford_circuit() {
    let a = fully_connected_hea(5, 1);
    let ks: Vec<u8> = (0..a.num_params())
        .map(|i| ((i * 2 + 1) % 4) as u8)
        .collect();
    let circuit = a.bind_clifford(&ks);
    let h = ising_1d(5, 0.5);
    let regime = ExecutionRegime::pqec_default();
    let st = eftq_stabilizer::estimate_energy(
        &circuit,
        &h,
        &regime.stabilizer_noise(),
        3000,
        SeedSequence::new(5),
    );
    let sn = regime.stabilizer_noise();
    let tn = TrajectoryNoise {
        depol_1q: sn.depol_1q,
        depol_2q: sn.depol_2q,
        depol_rz: sn.depol_rz,
        depol_rot_xy: sn.depol_rot_xy,
        meas_flip: sn.meas_flip,
    };
    let tr = estimate_energy_trajectories(&circuit, &h, &tn, 3000, SeedSequence::new(6));
    // Idle noise differs (trajectory has none), but pQEC idle rates are
    // ~1e-7 — negligible against the shot noise.
    let tol = 4.0 * (st.std_error + tr.std_error) + 0.02;
    assert!(
        (st.energy - tr.energy).abs() < tol,
        "stabilizer {} vs trajectory {} (tol {tol})",
        st.energy,
        tr.energy
    );
}

/// The event timeline's makespan matches the closed-form scheduler and
/// its per-op volume is self-consistent.
#[test]
fn timeline_consistency() {
    let cfg = ScheduleConfig::default();
    let t = ansatz_timeline(AnsatzKind::BlockedAllToAll, 20, 1, &cfg);
    assert_eq!(t.makespan(), 71); // Table 2
    assert!(t.operation_volume() > 0);
    let tiles = eftq_layout::LayoutModel::proposed().total_tiles(20);
    assert!(t.envelope_volume(tiles) >= 71 * tiles);
}

/// The placed grid and the QASM exporter round out the toolchain story:
/// build an ansatz for a layout, export it.
#[test]
fn layout_to_qasm_workflow() {
    let grid = PatchGrid::for_qubits(12);
    let capacity = grid.count(TileRole::Data);
    assert!(capacity >= 12);
    let a = fully_connected_hea(12, 1);
    let bound = a.circuit().bind_all(0.4);
    let qasm = to_qasm(&bound).unwrap();
    assert!(qasm.contains("qreg q[12];"));
    assert!(qasm.matches("cx ").count() == 66);
}
