//! Robustness suite for the planner service (`crates/planner`): a
//! poisoned, overloaded `eft_planner_serve` must shed load and degrade
//! answers, but never wedge, corrupt a response, or drop a request it
//! admitted.
//!
//! The chaos soak drives a server whose exact-compute path is poisoned
//! via the PR-7 fault plan (`panic~…`, `stall~…`) from many client
//! threads at once, past its admission queue bound, and asserts every
//! single connection receives a complete, parseable JSONL answer with
//! one of the documented statuses. The SIGTERM test uses the repo's
//! self-exec pattern (`current_exe()` + `--exact`) so the drain is
//! exercised by a genuine signal against a live process.

use eft_vqa_repro::planner::{serve, ServerConfig, SurfaceIndex};
use eft_vqa_repro::sweep::jsonl::parse_row;
use eft_vqa_repro::sweep::FaultPlan;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eftq-planner-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The advisor-only surrogate index (fast to build, no disk involved).
fn advisor_index() -> SurfaceIndex {
    let mut index = SurfaceIndex::new();
    index.add_advisor_grid().expect("advisor grid builds");
    index
}

/// One full HTTP exchange. `Err` only for transport failures — a
/// well-behaved server never produces one.
fn raw_get(addr: SocketAddr, target: &str) -> Result<(u16, String), String> {
    raw_exchange(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn raw_exchange(addr: SocketAddr, wire: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))
        .map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(wire.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .ok_or_else(|| format!("no status in {status_line:?}"))?
        .parse()
        .map_err(|e| format!("bad status in {status_line:?}: {e}"))?;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read headers: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".into());
        }
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader
        .read_to_string(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok((status, body))
}

/// Asserts the response invariants every planner answer must satisfy,
/// whatever chaos is active: documented status, parseable JSONL body,
/// coherent degradation stamps.
fn assert_clean(status: u16, body: &str, context: &str) {
    assert!(
        matches!(status, 200 | 400 | 404 | 429 | 503 | 504),
        "{context}: undocumented status {status}: {body}"
    );
    assert!(
        !body.is_empty(),
        "{context}: empty body with status {status}"
    );
    for line in body.lines() {
        let row = parse_row(line)
            .unwrap_or_else(|e| panic!("{context}: corrupt JSONL line {line:?}: {e}"));
        match row.label() {
            "planner_plan" => {
                assert_eq!(status, 200, "{context}: plan row with status {status}");
                let fidelity = row.get_num("fidelity").expect("fidelity field");
                assert!(fidelity.is_finite(), "{context}: non-finite fidelity");
                let degraded = row.get_int("degraded").expect("degraded field");
                assert!((0..=1).contains(&degraded), "{context}: bad degraded flag");
                if degraded == 1 {
                    let cause = row.get_str("cause").expect("degraded without cause");
                    assert!(
                        [
                            "extrapolated",
                            "deadline",
                            "breaker_open",
                            "exact_failed",
                            "exact_overrun"
                        ]
                        .contains(&cause),
                        "{context}: unknown degradation cause {cause:?}"
                    );
                }
            }
            "planner_lookup" => assert_eq!(status, 200, "{context}: lookup with {status}"),
            "~planner-error" => {
                assert_ne!(status, 200, "{context}: error row with status 200");
                assert_eq!(row.get_int("status"), Some(i64::from(status)));
                assert!(
                    row.get_str("cause").is_some(),
                    "{context}: error without cause"
                );
            }
            "~planner-health" | "planner_surface" => {}
            other => panic!("{context}: unexpected row label {other:?}"),
        }
    }
}

/// The headline soak: exact-compute poisoned with panics and stalls,
/// more clients than workers, queries crossing the grid boundary and
/// malformed wire garbage — every connection still gets one clean
/// answer and the server drains afterwards.
#[test]
fn soak_poisoned_overloaded_server_stays_clean() {
    let cfg = ServerConfig {
        deadline: Duration::from_millis(250),
        queue: 16,
        workers: 3,
        parsers: 2,
        exact_budget: Duration::from_millis(5),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(50),
        fault_plan: Some(FaultPlan::parse("panic~0.4x9,stall~0.15x9").unwrap()),
        ..ServerConfig::default()
    };
    let handle = serve(advisor_index(), cfg).unwrap();
    let addr = handle.addr();

    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 30;
    let soak_start = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut answered = 0usize;
                for i in 0..PER_CLIENT {
                    let k = c * PER_CLIENT + i;
                    let (status, body) = match k % 6 {
                        0 => raw_get(addr, "/plan?logical_qubits=24&device_qubits=30000"),
                        // The poisoned path: panics and stalls live here.
                        1 => raw_get(
                            addr,
                            &format!("/plan?logical_qubits={}&device_qubits=25000&exact=1", 8 + k % 40),
                        ),
                        2 => raw_get(
                            addr,
                            "/lookup?surface=planner_advisor/f_pqec&device_qubits=17500&logical_qubits=23",
                        ),
                        // Off-grid: must degrade, not fail.
                        3 => raw_get(addr, "/plan?logical_qubits=900&device_qubits=200"),
                        4 => raw_get(addr, "/healthz"),
                        // Garbage: NaN params and a broken request line.
                        _ if k % 2 == 0 => {
                            raw_get(addr, "/lookup?surface=planner_advisor/f_nisq&device_qubits=NaN&logical_qubits=12")
                        }
                        _ => raw_exchange(addr, "BROKEN\r\n\r\n"),
                    }
                    .unwrap_or_else(|e| panic!("client {c} request {i}: transport failure: {e}"));
                    assert_clean(status, &body, &format!("client {c} request {i}"));
                    answered += 1;
                }
                answered
            })
        })
        .collect();
    let answered: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert_eq!(
        answered,
        CLIENTS * PER_CLIENT,
        "every request must be answered"
    );
    assert!(
        soak_start.elapsed() < Duration::from_secs(120),
        "soak wedged: {:?}",
        soak_start.elapsed()
    );

    // Liveness survived the soak, and the chaos actually bit.
    let (status, body) = raw_get(addr, "/healthz").unwrap();
    assert_eq!(status, 200, "{body}");
    let health = parse_row(body.trim()).unwrap();
    assert_eq!(health.get_str("status"), Some("live"));
    let stats = handle.stats();
    let failures = stats
        .exact_failures
        .load(std::sync::atomic::Ordering::SeqCst);
    let degraded = stats.degraded.load(std::sync::atomic::Ordering::SeqCst);
    assert!(failures > 0, "fault plan planted no exact failures");
    assert!(degraded > 0, "no request degraded under chaos");
    assert!(
        health.get_int("exact_failures").unwrap() >= 1,
        "health must report the failures: {body}"
    );

    handle.drain();
}

/// Overload a one-worker server whose only worker is stalled: extra
/// requests shed with 429 (or age out with 504) instead of queueing
/// unboundedly, and `/healthz` keeps answering throughout.
#[test]
fn overload_sheds_with_clean_429s_and_health_stays_live() {
    let cfg = ServerConfig {
        deadline: Duration::from_millis(150),
        queue: 2,
        workers: 1,
        parsers: 1,
        exact_budget: Duration::from_millis(5),
        breaker_threshold: 10,
        breaker_cooldown: Duration::from_millis(50),
        // Every exact attempt stalls for 2x the deadline.
        fault_plan: Some(FaultPlan::parse("stall~1.0x9").unwrap()),
        ..ServerConfig::default()
    };
    let handle = serve(advisor_index(), cfg).unwrap();
    let addr = handle.addr();

    // Occupy the single worker with a stalled exact request.
    let jam = std::thread::spawn(move || {
        raw_get(addr, "/plan?logical_qubits=24&device_qubits=30000&exact=1").unwrap()
    });
    std::thread::sleep(Duration::from_millis(60));

    // Burst past the queue bound while the worker sleeps.
    let burst: Vec<_> = (0..10)
        .map(|i| {
            std::thread::spawn(move || {
                raw_get(addr, "/plan?logical_qubits=16&device_qubits=20000")
                    .unwrap_or_else(|e| panic!("burst {i}: {e}"))
            })
        })
        .collect();
    // Health answers while the evaluation stage is jammed.
    let (status, body) = raw_get(addr, "/healthz").unwrap();
    assert_eq!(status, 200, "healthz under load: {body}");

    let mut statuses = Vec::new();
    for (i, t) in burst.into_iter().enumerate() {
        let (status, body) = t.join().unwrap();
        assert_clean(status, &body, &format!("burst {i}"));
        statuses.push(status);
    }
    let (status, body) = jam.join().unwrap();
    assert_clean(status, &body, "jammed exact request");
    // The stalled request itself degrades (overrun) but is answered.
    assert_eq!(status, 200, "{body}");
    let row = parse_row(body.trim()).unwrap();
    assert_eq!(row.get_int("degraded"), Some(1), "{body}");

    let shed = statuses.iter().filter(|s| **s == 429).count();
    let expired = statuses.iter().filter(|s| **s == 504).count();
    assert!(
        shed + expired > 0,
        "burst past a full queue must shed or expire, got {statuses:?}"
    );
    handle.drain();
}

/// Parses a Prometheus text exposition body into `series → value`,
/// panicking on any line that is not a `#` comment or a well-formed
/// `name value` sample. (`/metrics` bodies are text, not JSONL, so
/// they deliberately bypass `assert_clean`.)
fn parse_metrics(body: &str, context: &str) -> BTreeMap<String, f64> {
    assert!(!body.is_empty(), "{context}: empty metrics body");
    let mut series = BTreeMap::new();
    for line in body.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("{context}: malformed metrics line {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("{context}: bad sample value in {line:?}: {e}"));
        assert!(!value.is_nan(), "{context}: NaN sample in {line:?}");
        assert!(
            series.insert(name.to_string(), value).is_none(),
            "{context}: duplicate series {name:?}"
        );
    }
    series
}

/// Counter-style series (`_total` / `_count` / `_sum` / `_bucket`) must
/// never move backwards — or disappear — between two scrapes of the
/// same server.
fn assert_metrics_monotonic(
    earlier: &BTreeMap<String, f64>,
    later: &BTreeMap<String, f64>,
    context: &str,
) {
    for (key, &before) in earlier {
        let base = key.split('{').next().unwrap();
        if !(base.ends_with("_total")
            || base.ends_with("_count")
            || base.ends_with("_sum")
            || base.ends_with("_bucket"))
        {
            continue;
        }
        let after = *later
            .get(key)
            .unwrap_or_else(|| panic!("{context}: counter series {key:?} disappeared"));
        assert!(
            after >= before,
            "{context}: {key} went backwards: {before} -> {after}"
        );
    }
}

/// Satellite to the chaos soak: `/metrics` scraped while the poisoned,
/// overloaded server is being hammered must stay parseable with
/// monotonic counters, and once the load quiesces the shed / deadline /
/// degraded series must equal exactly what the clients observed on the
/// wire, with the latency histogram counting every response once.
#[test]
fn metrics_scrapes_stay_consistent_under_chaos() {
    let cfg = ServerConfig {
        deadline: Duration::from_millis(250),
        queue: 8,
        workers: 2,
        parsers: 2,
        exact_budget: Duration::from_millis(5),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(50),
        fault_plan: Some(FaultPlan::parse("panic~0.4x9,stall~0.2x9").unwrap()),
        ..ServerConfig::default()
    };
    let handle = serve(advisor_index(), cfg).unwrap();
    let addr = handle.addr();

    const CLIENTS: usize = 5;
    const PER_CLIENT: usize = 24;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let (mut shed, mut expired, mut degraded) = (0u64, 0u64, 0u64);
                for i in 0..PER_CLIENT {
                    let k = c * PER_CLIENT + i;
                    let (status, body) = match k % 3 {
                        // The poisoned exact path.
                        0 => raw_get(
                            addr,
                            &format!(
                                "/plan?logical_qubits={}&device_qubits=25000&exact=1",
                                8 + k % 40
                            ),
                        ),
                        // Off-grid: degrades with `extrapolated`.
                        1 => raw_get(addr, "/plan?logical_qubits=900&device_qubits=200"),
                        _ => raw_get(addr, "/plan?logical_qubits=24&device_qubits=30000"),
                    }
                    .unwrap_or_else(|e| panic!("metrics soak client {c} request {i}: {e}"));
                    assert_clean(
                        status,
                        &body,
                        &format!("metrics soak client {c} request {i}"),
                    );
                    match status {
                        429 => shed += 1,
                        504 => expired += 1,
                        200 => {
                            for line in body.lines() {
                                if parse_row(line).unwrap().get_int("degraded") == Some(1) {
                                    degraded += 1;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                (shed, expired, degraded)
            })
        })
        .collect();

    // Mid-soak scrapes: each body must parse, and no counter may move
    // backwards between consecutive scrapes.
    let mut previous: Option<BTreeMap<String, f64>> = None;
    for scrape in 0..4 {
        std::thread::sleep(Duration::from_millis(40));
        let (status, body) =
            raw_get(addr, "/metrics").unwrap_or_else(|e| panic!("mid-soak scrape {scrape}: {e}"));
        assert_eq!(status, 200, "mid-soak scrape {scrape}: {body}");
        let series = parse_metrics(&body, &format!("mid-soak scrape {scrape}"));
        if let Some(earlier) = &previous {
            assert_metrics_monotonic(earlier, &series, &format!("mid-soak scrape {scrape}"));
        }
        previous = Some(series);
    }

    // Quiesce: every client response is counted before it is written,
    // so once the threads join the final scrape sees all of them.
    let (mut shed, mut expired, mut degraded) = (0u64, 0u64, 0u64);
    for t in clients {
        let (s, e, d) = t.join().unwrap();
        shed += s;
        expired += e;
        degraded += d;
    }
    let (status, body) = raw_get(addr, "/metrics").unwrap();
    assert_eq!(status, 200, "final scrape: {body}");
    let series = parse_metrics(&body, "final scrape");
    assert_metrics_monotonic(previous.as_ref().unwrap(), &series, "final scrape");

    // The shed / deadline / degraded counters are exact mirrors of what
    // the clients saw on the wire.
    assert!(degraded > 0, "chaos soak produced no degraded answers");
    assert_eq!(series["planner_shed_total"] as u64, shed, "{body}");
    assert_eq!(series["planner_deadline_total"] as u64, expired, "{body}");
    assert_eq!(series["planner_degraded_total"] as u64, degraded, "{body}");

    // Histogram-sum consistency: every response — including the scrape
    // answering this assertion — was timed exactly once, and the
    // cumulative buckets account for every observation.
    let requests: f64 = series
        .iter()
        .filter(|(k, _)| k.starts_with("planner_requests_total{"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(
        requests, series["planner_request_seconds_count"],
        "per-route counts must sum to the latency histogram count: {body}"
    );
    assert_eq!(
        series["planner_request_seconds_bucket{le=\"+Inf\"}"],
        series["planner_request_seconds_count"],
        "{body}"
    );

    // The full cataloged surface is present after a real soak, and the
    // queue has drained back to empty.
    for name in [
        "planner_requests_total{",
        "planner_request_seconds_bucket{",
        "planner_request_seconds_sum",
        "planner_request_seconds_count",
        "planner_request_seconds_p50_seconds",
        "planner_request_seconds_p99_seconds",
        "planner_admitted_total",
        "planner_served_total",
        "planner_degraded_total",
        "planner_exact_total",
        "planner_exact_failures_total",
        "planner_shed_total",
        "planner_deadline_total",
        "planner_rejected_total",
        "planner_inline_total",
        "planner_breaker_state",
        "planner_breaker_trips_total",
        "planner_queue_depth",
        "planner_surfaces_loaded",
    ] {
        assert!(
            series.keys().any(|k| k.starts_with(name)),
            "cataloged series {name:?} missing from final scrape: {body}"
        );
    }
    assert_eq!(series["planner_queue_depth"], 0.0, "{body}");
    assert!(series["planner_surfaces_loaded"] > 0.0, "{body}");

    handle.drain();
}

/// Shutdown mid-flight: requests already admitted (including one the
/// stall fault is holding on the worker) are all answered before
/// `join()` returns, and the listener refuses new work afterwards.
#[test]
fn drain_answers_every_admitted_request() {
    let cfg = ServerConfig {
        deadline: Duration::from_millis(200),
        queue: 8,
        workers: 1,
        parsers: 1,
        exact_budget: Duration::from_millis(5),
        breaker_threshold: 100,
        breaker_cooldown: Duration::from_millis(50),
        fault_plan: Some(FaultPlan::parse("stall~1.0x9").unwrap()),
        ..ServerConfig::default()
    };
    let handle = serve(advisor_index(), cfg).unwrap();
    let addr = handle.addr();

    let clients: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                raw_get(addr, "/plan?logical_qubits=24&device_qubits=30000&exact=1")
                    .unwrap_or_else(|e| panic!("drain client {i}: {e}"))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(60));
    handle.shutdown();
    for (i, t) in clients.into_iter().enumerate() {
        let (status, body) = t.join().unwrap();
        assert_clean(status, &body, &format!("drain client {i}"));
    }
    handle.join();
}

/// The full baseline index serves `/surfaces` and a figure-surface
/// lookup end to end (the same startup path CI's planner job uses).
#[test]
fn serves_the_checked_in_baseline_surfaces() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../ci/baselines");
    let index = SurfaceIndex::load(&dir).unwrap();
    let handle = serve(index, ServerConfig::default()).unwrap();
    let addr = handle.addr();

    let (status, body) = raw_get(addr, "/surfaces").unwrap();
    assert_eq!(status, 200);
    assert!(
        body.lines().count() > 4,
        "expected many baseline surfaces, got: {body}"
    );
    assert!(body.contains("fig05/pqec_win_fraction"), "{body}");

    let (status, body) = raw_get(
        addr,
        "/lookup?surface=fig05/pqec_win_fraction&device_qubits=10000&logical_qubits=12",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let row = parse_row(body.trim()).unwrap();
    let value = row.get_num("value").unwrap();
    assert!((0.0..=1.0).contains(&value), "{body}");

    let (status, _) = raw_get(addr, "/readyz").unwrap();
    assert_eq!(status, 200);
    handle.drain();
}

/// Child-process body for the SIGTERM test: serves the advisor index
/// with a stall-everything fault plan until SIGTERM, drains, then
/// writes a completion marker. A no-op under a normal test run.
#[test]
fn helper_planner_sigterm_child() {
    let Ok(state_dir) = std::env::var("EFTQ_PLANNER_TEST_DIR") else {
        return;
    };
    let state_dir = PathBuf::from(state_dir);
    eft_vqa_repro::planner::install_sigterm_drain();
    let cfg = ServerConfig {
        deadline: Duration::from_millis(200),
        exact_budget: Duration::from_millis(5),
        fault_plan: Some(FaultPlan::parse("stall~1.0x9").unwrap()),
        ..ServerConfig::default()
    };
    let handle = serve(advisor_index(), cfg).unwrap();
    std::fs::write(state_dir.join("addr"), handle.addr().to_string()).unwrap();
    while !eft_vqa_repro::planner::sigterm_drain_requested() {
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.drain();
    std::fs::write(state_dir.join("drained"), "clean\n").unwrap();
}

/// SIGTERM against a live child process: the in-flight (stalled)
/// request is still answered, the child exits 0, and its drain marker
/// proves `join()` completed.
#[test]
#[cfg(unix)]
fn sigterm_drains_a_live_server_process() {
    let state_dir = tmp("sigterm-state");
    let _ = std::fs::remove_dir_all(&state_dir);
    std::fs::create_dir_all(&state_dir).unwrap();

    let mut child = Command::new(std::env::current_exe().unwrap())
        .args(["helper_planner_sigterm_child", "--exact", "--nocapture"])
        .env("EFTQ_PLANNER_TEST_DIR", state_dir.to_str().unwrap())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sigterm helper");

    // Wait for the child's listener.
    let addr_path = state_dir.join("addr");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr: SocketAddr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_path) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "helper never published its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let (status, _) = raw_get(addr, "/readyz").unwrap();
    assert_eq!(status, 200);

    // Park a stalled exact request on the worker, then SIGTERM.
    let inflight = std::thread::spawn(move || {
        raw_get(addr, "/plan?logical_qubits=24&device_qubits=30000&exact=1")
    });
    std::thread::sleep(Duration::from_millis(60));
    let killed = Command::new("sh")
        .args(["-c", &format!("kill -TERM {}", child.id())])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -TERM failed");

    // The in-flight request is answered despite the drain.
    let (status, body) = inflight.join().unwrap().expect("in-flight answered");
    assert_clean(status, &body, "in-flight during SIGTERM");

    // The child exits cleanly once drained.
    let exit_deadline = Instant::now() + Duration::from_secs(30);
    let exit = loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            break st;
        }
        assert!(
            Instant::now() < exit_deadline,
            "child did not exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(exit.success(), "child exited {exit:?}");
    let marker = std::fs::read_to_string(state_dir.join("drained")).expect("drain marker");
    assert_eq!(marker.trim(), "clean");
}
