//! Randomized cross-crate invariants (proptest).
//!
//! Complements the per-crate unit tests with whole-pipeline properties:
//! simulator agreement on arbitrary circuits, channel physicality under
//! random parameters, schedule monotonicity, and resource-model sanity
//! under random device envelopes.

use eftq_circuit::transpile::{expand_rus, merge_rotations};
use eftq_circuit::Circuit;
use eftq_numerics::{Complex, Mat2};
use eftq_pauli::{Pauli, PauliString, PauliSum};
use eftq_qec::{DeviceModel, InjectionModel, SurfaceCodeModel};
use eftq_statesim::{DensityMatrix, KrausChannel, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_angle() -> impl Strategy<Value = f64> {
    -6.0..6.0f64
}

fn arb_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(
        (0usize..7, 0usize..n, 0usize..n.max(2) - 1, arb_angle()),
        len,
    )
    .prop_map(move |ops| {
        let mut c = Circuit::new(n);
        for (kind, q, other, angle) in ops {
            let b = if other >= q { other + 1 } else { other } % n;
            match kind {
                0 => {
                    c.h(q);
                }
                1 => {
                    c.s(q);
                }
                2 => {
                    c.rz(q, angle);
                }
                3 => {
                    c.rx(q, angle);
                }
                4 => {
                    c.ry(q, angle);
                }
                5 if b != q => {
                    c.cx(q, b);
                }
                _ if b != q => {
                    c.cz(q, b);
                }
                _ => {
                    c.x(q);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Density-matrix and state-vector simulation agree on arbitrary
    /// (noiseless) circuits.
    #[test]
    fn dm_equals_sv_on_random_circuits(circuit in arb_circuit(4, 25)) {
        let psi = StateVector::from_circuit(&circuit);
        let rho = DensityMatrix::from_circuit(&circuit);
        prop_assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-8);
        prop_assert!((rho.trace().re - 1.0).abs() < 1e-9);
        prop_assert!((rho.purity() - 1.0).abs() < 1e-8);
    }

    /// Rotation merging preserves the state on arbitrary circuits.
    #[test]
    fn merge_rotations_preserves_state(circuit in arb_circuit(3, 20)) {
        let before = StateVector::from_circuit(&circuit);
        let after = StateVector::from_circuit(&merge_rotations(&circuit));
        prop_assert!((before.fidelity(&after) - 1.0).abs() < 1e-8);
    }

    /// RUS expansion always nets the intended rotations.
    #[test]
    fn rus_expansion_preserves_state(circuit in arb_circuit(3, 12), seed in 0u64..50) {
        let before = StateVector::from_circuit(&circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let expansion = expand_rus(&circuit, &mut rng);
        let after = StateVector::from_circuit(&expansion.circuit);
        prop_assert!((before.fidelity(&after) - 1.0).abs() < 1e-8);
    }

    /// Random-parameter thermal relaxation channels are physical.
    #[test]
    fn thermal_relaxation_is_physical(
        t in 0.0..500.0f64,
        t1 in 10.0..1000.0f64,
        ratio in 0.05..1.99f64,
    ) {
        let t2 = t1 * ratio.min(1.999);
        let ch = KrausChannel::thermal_relaxation(t, t1, t2);
        prop_assert!(ch.is_trace_preserving(1e-9));
        // Applying to a valid density block keeps the trace.
        let plus = Mat2::new([
            Complex::real(0.5),
            Complex::real(0.5),
            Complex::real(0.5),
            Complex::real(0.5),
        ]);
        let out = ch.apply_to_block(&plus);
        prop_assert!((out.trace().re - 1.0).abs() < 1e-10);
    }

    /// Logical error rate is monotone in distance and physical rate.
    #[test]
    fn surface_code_monotonicity(d_idx in 0usize..6, p in 1e-4..5e-3f64) {
        let d = 3 + 2 * d_idx;
        let here = SurfaceCodeModel::new(d, p).logical_error_rate();
        let better_code = SurfaceCodeModel::new(d + 2, p).logical_error_rate();
        let worse_phys = SurfaceCodeModel::new(d, (p * 1.5).min(9e-3)).logical_error_rate();
        prop_assert!(better_code < here);
        prop_assert!(worse_phys >= here);
    }

    /// Injection feasibility thresholds behave like thresholds.
    #[test]
    fn injection_alpha_is_a_threshold(d_idx in 0usize..5) {
        let d = 5 + 2 * d_idx;
        let alpha = InjectionModel::new(d, 1e-3).shuffle_alpha();
        let below = InjectionModel::new(d, alpha * 0.9);
        let above = InjectionModel::new(d, (alpha * 1.1).min(0.4));
        prop_assert!(below.shuffle_feasible());
        if above.p_phys() < above.shuffle_beta() {
            prop_assert!(!above.shuffle_feasible());
        }
    }

    /// pQEC fidelity is monotone in device size and antitone in workload.
    #[test]
    fn pqec_fidelity_monotonicity(n_idx in 0usize..4, budget in 6_000usize..60_000) {
        use eft_vqa::fidelity::{pqec_fidelity, Workload};
        let n = 12 + 4 * n_idx;
        let w = Workload::fche(n, 1);
        let small = pqec_fidelity(&w, &DeviceModel::new(budget, 1e-3));
        let large = pqec_fidelity(&w, &DeviceModel::new(budget * 2, 1e-3));
        if let (Some(s), Some(l)) = (small, large) {
            prop_assert!(l.fidelity >= s.fidelity - 1e-12);
        }
        let deeper = Workload::fche(n, 2);
        if let (Some(a), Some(b)) = (
            pqec_fidelity(&w, &DeviceModel::eft_default()),
            pqec_fidelity(&deeper, &DeviceModel::eft_default()),
        ) {
            prop_assert!(b.fidelity <= a.fidelity + 1e-12);
        }
    }

    /// Pauli expectation values of random states stay in [-1, 1] and the
    /// observable expectation is linear.
    #[test]
    fn expectation_bounds_and_linearity(circuit in arb_circuit(3, 15), scale in 0.1..3.0f64) {
        let psi = StateVector::from_circuit(&circuit);
        let p = PauliString::from_paulis([Pauli::X, Pauli::Z, Pauli::Y]);
        let e = psi.expectation_pauli(&p);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
        let mut h = PauliSum::new(3);
        h.push(1.0, p.clone());
        let mut h2 = PauliSum::new(3);
        h2.push(scale, p);
        prop_assert!((psi.expectation(&h2) - scale * psi.expectation(&h)).abs() < 1e-9);
    }
}

/// Non-proptest randomized check: the tableau agrees with the state
/// vector after RUS-expanding Clifford-angle rotations (integration of
/// transpile + stabilizer + statevector).
#[test]
fn rus_clifford_pipeline_agreement() {
    for seed in 0..10u64 {
        let mut c = Circuit::new(4);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        for _ in 0..12 {
            let q = rng.gen_range(0..4);
            match rng.gen_range(0..4) {
                0 => {
                    c.h(q);
                }
                1 => {
                    c.rz(q, std::f64::consts::FRAC_PI_2);
                }
                2 => {
                    let t = (q + 1 + rng.gen_range(0..3)) % 4;
                    if t != q {
                        c.cx(q, t);
                    }
                }
                _ => {
                    c.s(q);
                }
            }
        }
        let psi = StateVector::from_circuit(&c);
        let mut tab = eftq_stabilizer::Tableau::new(4);
        tab.run(&c);
        for s in ["ZZII", "XXXX", "IYZI"] {
            let p: PauliString = s.parse().unwrap();
            assert!(
                (psi.expectation_pauli(&p) - tab.expectation(&p)).abs() < 1e-9,
                "seed {seed}, pauli {s}"
            );
        }
    }
}
