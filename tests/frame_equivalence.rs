//! Equivalence of the frame-batched energy estimator with the per-shot
//! tableau reference path.
//!
//! `estimate_energy` (one noiseless tableau + Pauli frames, 64 shots per
//! word) and `estimate_energy_tableau` (one full noisy tableau per shot)
//! implement the *same statistical model* with different RNG streams:
//! noiseless they must agree exactly, noisy they must agree in
//! distribution (means within standard errors over matched budgets).

use eftq_circuit::Circuit;
use eftq_numerics::SeedSequence;
use eftq_pauli::{Pauli, PauliString, PauliSum};
use eftq_stabilizer::noise::TwirledIdle;
use eftq_stabilizer::{
    estimate_energy, estimate_energy_tableau, estimate_energy_threaded, run_noisy_frames,
    run_noisy_frames_percall, StabilizerNoise,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random n-qubit Clifford circuit over the full supported gate set,
/// including π/2-multiple rotations (so every noise class can fire).
fn random_clifford(n: usize, gates: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        match rng.gen_range(0..13) {
            0 => {
                c.h(rng.gen_range(0..n));
            }
            1 => {
                c.s(rng.gen_range(0..n));
            }
            2 => {
                c.sdg(rng.gen_range(0..n));
            }
            3 => {
                c.x(rng.gen_range(0..n));
            }
            4 => {
                c.z(rng.gen_range(0..n));
            }
            5 => {
                let k = rng.gen_range(0..4);
                c.rz(
                    rng.gen_range(0..n),
                    f64::from(k) * std::f64::consts::FRAC_PI_2,
                );
            }
            6 => {
                let k = rng.gen_range(0..4);
                c.ry(
                    rng.gen_range(0..n),
                    f64::from(k) * std::f64::consts::FRAC_PI_2,
                );
            }
            7 => {
                let k = rng.gen_range(0..4);
                c.rx(
                    rng.gen_range(0..n),
                    f64::from(k) * std::f64::consts::FRAC_PI_2,
                );
            }
            8 | 9 => {
                let a = rng.gen_range(0..n);
                let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                c.cx(a, b);
            }
            10 | 11 => {
                let a = rng.gen_range(0..n);
                let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                c.cz(a, b);
            }
            _ => {
                let a = rng.gen_range(0..n);
                let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                c.swap(a, b);
            }
        }
    }
    c
}

/// A random Hermitian observable with a handful of random Pauli terms.
fn random_observable(n: usize, terms: usize, rng: &mut StdRng) -> PauliSum {
    let mut h = PauliSum::new(n);
    for _ in 0..terms {
        let letters: Vec<Pauli> = (0..n).map(|_| Pauli::ALL[rng.gen_range(0..4)]).collect();
        let coeff = rng.gen_range(-2.0..2.0f64);
        h.push(coeff, PauliString::from_paulis(letters));
    }
    h
}

fn nisq_like_noise() -> StabilizerNoise {
    StabilizerNoise {
        depol_1q: 0.002,
        depol_2q: 0.02,
        depol_rz: 0.004,
        depol_rot_xy: 0.004,
        meas_flip: 0.01,
        idle: TwirledIdle {
            px: 0.001,
            py: 0.001,
            pz: 0.002,
        },
    }
}

/// Noiseless, the two paths are *exactly* equal: every frame is identity,
/// so both reduce to the one deterministic tableau energy.
#[test]
fn noiseless_paths_agree_exactly() {
    let mut rng = StdRng::seed_from_u64(2025);
    for trial in 0..25 {
        let n = 2 + (trial % 5);
        let circuit = random_clifford(n, 40, &mut rng);
        let h = random_observable(n, 6, &mut rng);
        for shots in [1usize, 3, 64, 65] {
            let frame = estimate_energy(
                &circuit,
                &h,
                &StabilizerNoise::noiseless(),
                shots,
                SeedSequence::new(trial as u64),
            );
            let tableau = estimate_energy_tableau(
                &circuit,
                &h,
                &StabilizerNoise::noiseless(),
                shots,
                SeedSequence::new(trial as u64),
            );
            assert_eq!(frame.energy, tableau.energy, "trial {trial} shots {shots}");
            // All shots are identical; the variance is zero up to the
            // rounding noise of averaging irrational coefficients.
            assert!(frame.std_error < 1e-12, "trial {trial}");
            assert!(tableau.std_error < 1e-12, "trial {trial}");
        }
    }
}

/// Analytic readout damping is identical (and exact) on both paths.
#[test]
fn measurement_damping_agrees_exactly() {
    let mut rng = StdRng::seed_from_u64(77);
    let circuit = random_clifford(4, 30, &mut rng);
    let h = random_observable(4, 5, &mut rng);
    let mut noise = StabilizerNoise::noiseless();
    noise.meas_flip = 0.07;
    let frame = estimate_energy(&circuit, &h, &noise, 9, SeedSequence::new(1));
    let tableau = estimate_energy_tableau(&circuit, &h, &noise, 9, SeedSequence::new(1));
    assert_eq!(frame.energy, tableau.energy);
}

/// Under noise the paths are independent Monte-Carlo estimators of the
/// same mean: over matched budgets their means must sit within a few
/// combined standard errors, across random circuits and observables.
#[test]
fn noisy_means_agree_within_standard_error() {
    let mut rng = StdRng::seed_from_u64(31);
    let noise = nisq_like_noise();
    for trial in 0..6 {
        let n = 3 + (trial % 4);
        let circuit = random_clifford(n, 30, &mut rng);
        let h = random_observable(n, 5, &mut rng);
        let shots = 3000;
        let frame = estimate_energy(
            &circuit,
            &h,
            &noise,
            shots,
            SeedSequence::new(100 + trial as u64),
        );
        let tableau = estimate_energy_tableau(
            &circuit,
            &h,
            &noise,
            shots,
            SeedSequence::new(200 + trial as u64),
        );
        let tol = 5.0 * (frame.std_error.hypot(tableau.std_error)).max(1e-3);
        assert!(
            (frame.energy - tableau.energy).abs() <= tol,
            "trial {trial}: frame {} ± {} vs tableau {} ± {}",
            frame.energy,
            frame.std_error,
            tableau.energy,
            tableau.std_error,
        );
    }
}

/// Heavier two-qubit depolarizing stress on an entangling circuit: the
/// damping of a GHZ stabilizer must match between the paths.
#[test]
fn ghz_depolarizing_damping_matches() {
    let n = 6;
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    let mut h = PauliSum::new(n);
    h.push(1.0, PauliString::from_paulis(vec![Pauli::Z; n]));
    h.push(0.5, PauliString::from_paulis(vec![Pauli::X; n]));
    let mut noise = StabilizerNoise::noiseless();
    noise.depol_2q = 0.05;
    let shots = 4000;
    let frame = estimate_energy(&c, &h, &noise, shots, SeedSequence::new(8));
    let tableau = estimate_energy_tableau(&c, &h, &noise, shots, SeedSequence::new(9));
    let tol = 5.0 * frame.std_error.hypot(tableau.std_error);
    assert!(
        (frame.energy - tableau.energy).abs() <= tol,
        "frame {} vs tableau {}",
        frame.energy,
        tableau.energy
    );
}

/// Idle-noise windows (including those opened by skipped measurement
/// gates) hit the same locations on both paths.
#[test]
fn idle_noise_location_parity() {
    // Qubit 1 idles while qubit 0 works for three layers.
    let mut c = Circuit::new(2);
    c.h(0).s(0).h(0);
    let mut h = PauliSum::new(2);
    h.push_str(1.0, "IZ");
    let mut noise = StabilizerNoise::noiseless();
    noise.idle = TwirledIdle {
        px: 0.1,
        py: 0.0,
        pz: 0.0,
    };
    let shots = 4000;
    let frame = estimate_energy(&c, &h, &noise, shots, SeedSequence::new(3));
    let tableau = estimate_energy_tableau(&c, &h, &noise, shots, SeedSequence::new(4));
    // Three idle windows at p=0.1: E[⟨Z₁⟩] = (1 − 0.2)³ = 0.512.
    let expect = 0.512;
    assert!((frame.energy - expect).abs() < 0.05, "{}", frame.energy);
    assert!((tableau.energy - expect).abs() < 0.05, "{}", tableau.energy);
}

/// Same seed ⇒ bit-identical result, for ragged and aligned shot counts.
#[test]
fn frame_estimator_deterministic_given_seed() {
    let mut rng = StdRng::seed_from_u64(5);
    let circuit = random_clifford(5, 40, &mut rng);
    let h = random_observable(5, 6, &mut rng);
    let noise = nisq_like_noise();
    for shots in [1usize, 63, 64, 65, 130, 256] {
        let a = estimate_energy(&circuit, &h, &noise, shots, SeedSequence::new(42));
        let b = estimate_energy(&circuit, &h, &noise, shots, SeedSequence::new(42));
        assert_eq!(a, b, "shots {shots}");
        assert!(a.energy.is_finite());
    }
}

/// Shot counts straddling the 64-lane boundary give statistically
/// consistent answers (no padding-bit leakage into means).
#[test]
fn ragged_shot_counts_are_unbiased() {
    let n = 4;
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    let mut h = PauliSum::new(n);
    h.push(1.0, PauliString::from_paulis(vec![Pauli::Z; n]));
    let mut noise = StabilizerNoise::noiseless();
    noise.depol_1q = 0.3;
    // Mean over many ragged batches ≈ mean of one large aligned batch.
    let big = estimate_energy(&c, &h, &noise, 4096, SeedSequence::new(1000));
    let mut ragged = 0.0;
    let batches = 40;
    for i in 0..batches {
        ragged += estimate_energy(&c, &h, &noise, 65, SeedSequence::new(2000 + i)).energy;
    }
    ragged /= f64::from(batches as u32);
    assert!(
        (ragged - big.energy).abs() < 0.08,
        "ragged {ragged} vs aligned {}",
        big.energy
    );
}

/// The compiled batched sampler matches the per-call reference sampler in
/// distribution: same flip rate for every observable, across random
/// circuits (three independent estimators of the same mean, pairwise
/// within combined standard errors).
#[test]
fn batched_sampler_matches_percall_reference() {
    let mut rng = StdRng::seed_from_u64(63);
    let noise = nisq_like_noise();
    for trial in 0..4 {
        let n = 3 + trial;
        let circuit = random_clifford(n, 30, &mut rng);
        let h = random_observable(n, 5, &mut rng);
        let shots = 4000;
        // Batched estimate (production path).
        let batched = estimate_energy(&circuit, &h, &noise, shots, SeedSequence::new(trial as u64));
        // Per-call frame estimate: reference sampler, same statistical
        // model, independent stream.
        let mut frame_rng = StdRng::seed_from_u64(500 + trial as u64);
        let percall = run_noisy_frames_percall(&circuit, &noise, shots, &mut frame_rng);
        let mut ideal = eftq_stabilizer::Tableau::new(n);
        ideal.run(&circuit);
        let mut percall_energy = 0.0;
        for term in h.terms() {
            let e0 = ideal.expectation(&term.string);
            if e0 == 0.0 {
                continue;
            }
            let damp = (1.0 - 2.0 * noise.meas_flip).powi(term.string.weight() as i32);
            let flips = percall.flip_count(&term.string) as f64;
            percall_energy += term.coefficient * damp * e0 * (1.0 - 2.0 * flips / shots as f64);
        }
        let tol = 5.0 * batched.std_error.max(1e-3) * 2.0;
        assert!(
            (batched.energy - percall_energy).abs() <= tol,
            "trial {trial}: batched {} vs percall {percall_energy}",
            batched.energy
        );
    }
}

/// Batched frames are deterministic and *thread-count-invariant*: the
/// same seed yields bit-identical frames and energies whether batches run
/// on one worker or eight.
#[test]
fn threaded_results_are_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(71);
    let circuit = random_clifford(6, 50, &mut rng);
    let h = random_observable(6, 6, &mut rng);
    let noise = nisq_like_noise();
    for shots in [64usize, 300, 1024, 2100] {
        let frames = run_noisy_frames(&circuit, &noise, shots, SeedSequence::new(7));
        let base = estimate_energy(&circuit, &h, &noise, shots, SeedSequence::new(7));
        for threads in [2usize, 8] {
            let t = estimate_energy_threaded(
                &circuit,
                &h,
                &noise,
                shots,
                SeedSequence::new(7),
                threads,
            );
            assert_eq!(base, t, "shots {shots} threads {threads}");
        }
        // Frame content itself is reproducible from the seed alone.
        let again = run_noisy_frames(&circuit, &noise, shots, SeedSequence::new(7));
        assert_eq!(frames, again, "shots {shots}");
    }
}

/// The 100-qubit regime the paper simulates: the frame estimator stays
/// exact and fast where per-shot tableau simulation would crawl.
#[test]
fn large_register_noiseless_exactness() {
    let n = 100;
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    let mut h = PauliSum::new(n);
    h.push(1.0, PauliString::from_paulis(vec![Pauli::Z; n]));
    h.push(-0.5, PauliString::from_paulis(vec![Pauli::X; n]));
    let r = estimate_energy(
        &c,
        &h,
        &StabilizerNoise::noiseless(),
        128,
        SeedSequence::new(0),
    );
    assert_eq!(r.energy, 0.5); // ⟨Z…Z⟩ = 1, ⟨X…X⟩ = 1
    assert_eq!(r.std_error, 0.0);
}
