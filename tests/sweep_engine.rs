//! Integration suite for the sweep-orchestration engine: thread/seed
//! invariance, kill-and-resume convergence, subset filtering, shard
//! partitioning + merge reassembly, and the compilation-hoist
//! equivalence — exercised through the umbrella's prelude on real
//! (reduced) physics workloads.

use eft_vqa_repro::prelude::*;
use eft_vqa_repro::sweep::jsonl::parse_row;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A miniature Figure-12-shaped sweep: a genetic Clifford VQE per point,
/// small enough for the test budget but running the full stack
/// (tableau + compiled noise programs + GA) under the engine.
fn mini_spec() -> SweepSpec {
    SweepSpec::new("mini_vqe")
        .axis_strs("model", ["Ising", "Heisenberg"])
        .axis_ints("qubits", [4, 6])
        .axis_nums("j", [0.5, 1.0])
}

fn mini_eval(point: &SweepPoint, ctx: &PointCtx) -> Row {
    let n = point.int("qubits") as usize;
    let j = point.num("j");
    let h = match point.str("model") {
        "Ising" => ising_1d(n, j),
        _ => heisenberg_1d(n, j),
    };
    let ansatz = linear_hea(n, 1);
    let noise = ExecutionRegime::nisq_default().stabilizer_noise();
    let template = NoiseTemplate::compile(ansatz.circuit(), &noise);
    let config = CliffordVqeConfig {
        ga: eft_vqa_repro::optim::GeneticConfig {
            population: 8,
            generations: 4,
            ..Default::default()
        },
        shots: 4,
        // The engine's per-point seed keys the whole evaluation.
        seed: ctx.seed.seed(),
    };
    let out = clifford_vqe_with_template(&ansatz, &h, &template, &config);
    Row::new("mini_vqe")
        .str("model", point.str("model"))
        .int("qubits", n as i64)
        .num("j", j)
        .num("energy", out.best_energy)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eftq-sweep-engine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn jsonl(rows: &[Row]) -> Vec<String> {
    rows.iter().map(Row::to_json_row).collect()
}

fn file_lines(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn rows_are_bit_identical_across_thread_counts() {
    let spec = mini_spec();
    let base = run_sweep(&spec, &SweepOptions::default(), mini_eval).unwrap();
    assert_eq!(base.rows.len(), 8);
    for threads in [2usize, 8] {
        let opts = SweepOptions {
            threads,
            ..SweepOptions::default()
        };
        let got = run_sweep(&spec, &opts, mini_eval).unwrap();
        assert_eq!(jsonl(&base.rows), jsonl(&got.rows), "threads = {threads}");
    }
}

#[test]
fn killed_sweep_resumes_to_the_uninterrupted_artifact() {
    let spec = mini_spec();
    let full_path = tmp("mini-full.jsonl");
    let killed_path = tmp("mini-killed.jsonl");
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&killed_path);

    run_sweep(
        &spec,
        &SweepOptions {
            artifact: Some(full_path.clone()),
            ..SweepOptions::default()
        },
        mini_eval,
    )
    .unwrap();
    let reference = file_lines(&full_path);
    assert_eq!(reference.len(), 8);

    // The runner appends rows in point order and flushes per row, so a
    // SIGKILL after K points leaves exactly the first K lines.
    for k in [0usize, 3, 7] {
        let _ = std::fs::remove_file(&killed_path);
        std::fs::write(&killed_path, format!("{}\n", reference[..k].join("\n"))).unwrap();
        if k == 0 {
            std::fs::write(&killed_path, "").unwrap();
        }
        let evals = AtomicUsize::new(0);
        let report = run_sweep(
            &spec,
            &SweepOptions {
                artifact: Some(killed_path.clone()),
                threads: 4,
                ..SweepOptions::default()
            },
            |p, ctx| {
                evals.fetch_add(1, Ordering::Relaxed);
                mini_eval(p, ctx)
            },
        )
        .unwrap();
        assert_eq!(report.resumed, k, "kill after {k}");
        assert_eq!(evals.load(Ordering::Relaxed), 8 - k, "kill after {k}");
        assert_eq!(file_lines(&killed_path), reference, "kill after {k}");
        assert_eq!(jsonl(&report.rows), reference, "kill after {k}");
    }
}

#[test]
fn subset_filter_selects_exactly_the_matching_points() {
    let spec = mini_spec();
    let filter = PointFilter::parse("model=Heisenberg,j=1").unwrap();
    let selected = spec.select(Some(&filter)).unwrap();
    let ids: Vec<usize> = selected.iter().map(|p| p.id).collect();
    // Grid order: model (slowest) × qubits × j; Heisenberg is ids 4..8,
    // j = 1.0 is every second one.
    assert_eq!(ids, vec![5, 7]);
    let report = run_sweep(
        &spec,
        &SweepOptions {
            filter: Some(filter),
            ..SweepOptions::default()
        },
        mini_eval,
    )
    .unwrap();
    assert_eq!(report.rows.len(), 2);
    for (row, qubits) in report.rows.iter().zip([4i64, 6]) {
        assert_eq!(row.get_str("model"), Some("Heisenberg"));
        assert_eq!(row.get_num("j"), Some(1.0));
        assert_eq!(row.get_int("qubits"), Some(qubits));
    }
    // Filtered rows equal the corresponding rows of the full grid.
    let full = run_sweep(&spec, &SweepOptions::default(), mini_eval).unwrap();
    assert_eq!(jsonl(&report.rows)[0], jsonl(&full.rows)[5]);
    assert_eq!(jsonl(&report.rows)[1], jsonl(&full.rows)[7]);
}

#[test]
fn merged_shards_match_the_unsharded_threaded_artifact() {
    // The acceptance contract: for any N, running every shard and
    // merging reassembles the byte-identical artifact of an unsharded
    // `--threads 8` run.
    let spec = mini_spec();
    let unsharded = tmp("mini-unsharded.jsonl");
    let _ = std::fs::remove_file(&unsharded);
    run_sweep(
        &spec,
        &SweepOptions {
            artifact: Some(unsharded.clone()),
            threads: 8,
            ..SweepOptions::default()
        },
        mini_eval,
    )
    .unwrap();
    let reference = file_lines(&unsharded);
    assert_eq!(reference.len(), 8);

    for count in [1usize, 2, 4] {
        let mut shard_paths = Vec::new();
        let mut shard_sizes = Vec::new();
        for index in 0..count {
            let path = tmp(&format!("mini-shard-{index}-{count}.jsonl"));
            let _ = std::fs::remove_file(&path);
            let report = run_sweep(
                &spec,
                &SweepOptions {
                    artifact: Some(path.clone()),
                    shard: Some(Shard { index, count }),
                    threads: 2,
                    ..SweepOptions::default()
                },
                mini_eval,
            )
            .unwrap();
            shard_sizes.push(report.rows.len());
            shard_paths.push(path);
        }
        // The shards partition the grid: disjoint and union-complete.
        assert_eq!(shard_sizes.iter().sum::<usize>(), 8, "N = {count}");
        let mut all_lines: Vec<String> = shard_paths.iter().flat_map(|p| file_lines(p)).collect();
        all_lines.sort();
        let mut expect = reference.clone();
        expect.sort();
        assert_eq!(all_lines, expect, "N = {count}");

        let merged = tmp(&format!("mini-merged-{count}.jsonl"));
        let _ = std::fs::remove_file(&merged);
        let report = run_sweep(
            &spec,
            &SweepOptions {
                artifact: Some(merged.clone()),
                merge: shard_paths,
                ..SweepOptions::default()
            },
            |_, _| unreachable!("merge must not compute"),
        )
        .unwrap();
        assert_eq!(report.merged, 8, "N = {count}");
        assert_eq!(
            std::fs::read(&merged).unwrap(),
            std::fs::read(&unsharded).unwrap(),
            "N = {count}"
        );
    }
}

#[test]
fn shard_resumes_after_a_mid_shard_kill() {
    // `--shard` composes with `--resume`: a shard killed after its first
    // point completes only its own remainder, and the shard artifact
    // converges to the uninterrupted shard run's bytes.
    let spec = mini_spec();
    let shard = Shard { index: 1, count: 2 };
    let path = tmp("mini-shard-killed.jsonl");
    let _ = std::fs::remove_file(&path);
    let opts = SweepOptions {
        artifact: Some(path.clone()),
        shard: Some(shard),
        ..SweepOptions::default()
    };
    run_sweep(&spec, &opts, mini_eval).unwrap();
    let reference = file_lines(&path);
    assert_eq!(reference.len(), 4);

    // Kill after one completed point (the runner appends in point order
    // and flushes per row).
    std::fs::write(&path, format!("{}\n", reference[0])).unwrap();
    let evals = AtomicUsize::new(0);
    let report = run_sweep(
        &spec,
        &SweepOptions {
            threads: 4,
            ..opts.clone()
        },
        |p, ctx| {
            evals.fetch_add(1, Ordering::Relaxed);
            mini_eval(p, ctx)
        },
    )
    .unwrap();
    assert_eq!(report.resumed, 1);
    assert_eq!(report.computed, 3);
    assert_eq!(evals.load(Ordering::Relaxed), 3);
    assert_eq!(file_lines(&path), reference, "shard artifact converges");

    // The resumed shard still merges into the unsharded artifact.
    let other = tmp("mini-shard-other.jsonl");
    let _ = std::fs::remove_file(&other);
    run_sweep(
        &spec,
        &SweepOptions {
            artifact: Some(other.clone()),
            shard: Some(Shard { index: 0, count: 2 }),
            ..SweepOptions::default()
        },
        mini_eval,
    )
    .unwrap();
    let merged = tmp("mini-shard-killed-merged.jsonl");
    let _ = std::fs::remove_file(&merged);
    let report = run_sweep(
        &spec,
        &SweepOptions {
            artifact: Some(merged.clone()),
            merge: vec![other, path],
            ..SweepOptions::default()
        },
        |_, _| unreachable!("merge must not compute"),
    )
    .unwrap();
    assert_eq!(report.merged, 8);
    let unsharded = run_sweep(&spec, &SweepOptions::default(), mini_eval).unwrap();
    assert_eq!(file_lines(&merged), jsonl(&unsharded.rows));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shards partition the selection for arbitrary grid sizes and shard
    /// counts: every position is owned by exactly one shard.
    #[test]
    fn shards_partition_arbitrary_selections(len in 1usize..64, count in 1usize..12) {
        let mut owners = vec![0usize; len];
        for index in 0..count {
            let shard = Shard { index, count };
            for (i, owned) in owners.iter_mut().enumerate() {
                if shard.selects(i) {
                    *owned += 1;
                }
            }
        }
        prop_assert!(owners.iter().all(|&n| n == 1), "{owners:?}");
    }
}

/// Encodes every char of `s` as JSON `\uXXXX` escapes, astral-plane
/// chars as UTF-16 surrogate pairs — the encoding style of foreign
/// JSONL writers, which our own writer never produces.
fn escape_everything(s: &str) -> String {
    let mut out = String::new();
    for ch in s.chars() {
        let c = ch as u32;
        if c < 0x10000 {
            out.push_str(&format!("\\u{c:04x}"));
        } else {
            let v = c - 0x10000;
            out.push_str(&format!(
                "\\u{:04x}\\u{:04x}",
                0xd800 + (v >> 10),
                0xdc00 + (v & 0x3ff)
            ));
        }
    }
    out
}

/// Arbitrary unicode strings biased toward the decoder's edge cases:
/// controls (always escaped by the writer), quotes/backslashes, BMP
/// text, and astral-plane chars (surrogate pairs when `\u`-escaped).
fn tricky_string(codes: &[u32]) -> String {
    codes
        .iter()
        .filter_map(|&c| char::from_u32(c % 0x110000))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Writer → decoder round-trip for arbitrary string payloads: the
    /// parsed row re-serializes to the exact artifact line.
    #[test]
    fn jsonl_string_fields_round_trip(codes in proptest::collection::vec(0u32..0x110000, 0..48)) {
        let s = tricky_string(&codes);
        let line = Row::new("t").str("s", &s).to_json_row();
        let row = eft_vqa_repro::sweep::jsonl::parse_row(&line).unwrap();
        prop_assert_eq!(row.get_str("s"), Some(s.as_str()));
        prop_assert_eq!(row.to_json_row(), line);
    }

    /// Foreign encoders escape *everything*, including surrogate pairs
    /// for astral chars: the decoder must recover the identical string.
    #[test]
    fn jsonl_decodes_fully_escaped_foreign_lines(codes in proptest::collection::vec(0u32..0x110000, 0..48)) {
        let s = tricky_string(&codes);
        let line = format!("{{\"row\":\"t\",\"s\":\"{}\"}}", escape_everything(&s));
        let row = eft_vqa_repro::sweep::jsonl::parse_row(&line).unwrap();
        prop_assert_eq!(row.get_str("s"), Some(s.as_str()));
    }

    /// A `\u` escape cut anywhere — mid-hex, or between the halves of a
    /// surrogate pair — is rejected, never panics, never truncates
    /// silently.
    #[test]
    fn jsonl_rejects_truncated_escapes(codes in proptest::collection::vec(0u32..0x110000, 1..16), cut in 0usize..12) {
        let mut s = tricky_string(&codes);
        if s.is_empty() {
            // All codes landed on surrogates: any char will do, the cut
            // is what is under test.
            s.push('a');
        }
        let escaped = escape_everything(&s);
        // Cut inside the escape tail (the last escape is 6 bytes long),
        // leaving the opening brace/quote intact.
        let keep = escaped.len().saturating_sub(cut % 6 + 1);
        let line = format!("{{\"row\":\"t\",\"s\":\"{}\"}}", &escaped[..keep]);
        match eft_vqa_repro::sweep::jsonl::parse_row(&line) {
            // Cutting exactly at an escape boundary leaves a valid
            // shorter string — which must then be a prefix of the
            // original (a widowed high surrogate is an error instead).
            Ok(row) => {
                let got = row.get_str("s").unwrap_or_default();
                prop_assert!(s.starts_with(got), "{s:?} vs {got:?}");
            }
            Err(e) => prop_assert!(!e.is_empty()),
        }
    }
}

#[test]
fn template_hoist_matches_per_genome_compilation() {
    // clifford_vqe (compiles the template internally) and an explicit
    // template share every bit; and the template-bound programs match a
    // from-scratch compile of each bound circuit.
    let h = ising_1d(6, 0.5);
    let ansatz = fully_connected_hea(6, 1);
    let noise = ExecutionRegime::pqec_default().stabilizer_noise();
    let config = CliffordVqeConfig {
        ga: eft_vqa_repro::optim::GeneticConfig {
            population: 8,
            generations: 6,
            ..Default::default()
        },
        shots: 8,
        ..CliffordVqeConfig::default()
    };
    let direct = clifford_vqe(&ansatz, &h, &noise, &config);
    let template = NoiseTemplate::compile(ansatz.circuit(), &noise);
    let hoisted = clifford_vqe_with_template(&ansatz, &h, &template, &config);
    assert_eq!(direct.best_energy, hoisted.best_energy);
    assert_eq!(direct.best_genome, hoisted.best_genome);
    assert_eq!(direct.history, hoisted.history);

    let program = template.bind_clifford(&direct.best_genome);
    let circuit = ansatz.bind_clifford(&direct.best_genome);
    let a = estimate_energy_program(
        &circuit,
        &h,
        &program,
        template.meas_flip(),
        256,
        SeedSequence::new(3),
        2,
    );
    let b = estimate_energy_threaded(&circuit, &h, &noise, 256, SeedSequence::new(3), 2);
    assert_eq!(a, b);
}

#[test]
fn table1_driver_rows_reproduce_the_paper_table_shape() {
    let report = run_sweep(&Table1Driver::spec(), &SweepOptions::default(), |p, _| {
        Table1Driver::eval(p)
    })
    .unwrap();
    assert_eq!(report.rows.len(), 12);
    // Paper ordering: Compact <= Intermediate <= Fast <= Grid per ansatz.
    for ansatz in ["linear", "fully_connected", "blocked_all_to_all"] {
        let mean = |layout: &str| {
            report
                .rows
                .iter()
                .find(|r| {
                    r.get_str("layout") == Some(layout) && r.get_str("ansatz") == Some(ansatz)
                })
                .and_then(|r| r.get_num("mean_ratio"))
                .unwrap()
        };
        assert!(mean("Compact") <= mean("Intermediate") + 1e-9, "{ansatz}");
        assert!(mean("Intermediate") <= mean("Fast") + 1e-9, "{ansatz}");
        assert!(mean("Fast") <= mean("Grid") + 1e-9, "{ansatz}");
    }
}

/// Acceptance for the tracing tentpole: a fig12 sweep traced at
/// `--threads 1` and `--threads 8` writes byte-identical `--trace`
/// artifacts. Span identity (stable ids, axes, outcomes, attempt
/// counts) lives in the diffable main file; wall-clock durations live
/// only in the `<path>.timings` sidecar, which is *not* compared.
#[test]
fn fig12_trace_artifact_is_byte_identical_across_thread_counts() {
    let spec = Fig12Driver::spec(false);
    let driver = Fig12Driver::new(false);
    // One qubit rung keeps the VQE budget small; the filter still
    // leaves 6 points (2 models × 3 couplings) to shuffle across
    // worker threads.
    let filter = PointFilter::parse("qubits=16").unwrap();
    let mut traces = Vec::new();
    for threads in [1usize, 8] {
        let path = tmp(&format!("fig12-trace-{threads}.jsonl"));
        let timings_path = eft_vqa_repro::sweep::trace::timing_path(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&timings_path);
        let report = run_sweep(
            &spec,
            &SweepOptions {
                threads,
                filter: Some(filter.clone()),
                trace: Some(path.clone()),
                ..SweepOptions::default()
            },
            |p, _| driver.eval(p),
        )
        .unwrap();
        assert_eq!(report.rows.len(), 6, "threads = {threads}");

        let trace = file_lines(&path);
        // One root span + one successful eval span per point.
        assert_eq!(trace.len(), 12, "threads = {threads}: {trace:?}");
        for line in &trace {
            let row = parse_row(line).unwrap();
            assert_eq!(row.get_str("outcome"), Some("ok"), "{line}");
            assert!(
                matches!(row.get_str("name"), Some("point" | "eval")),
                "{line}"
            );
        }
        // The sidecar carries exactly one timing row per span; its
        // durations are machine-dependent, so only its shape is
        // checked.
        let timings = file_lines(&timings_path);
        assert_eq!(timings.len(), trace.len(), "threads = {threads}");
        for line in &timings {
            parse_row(line).unwrap();
        }
        traces.push(trace);
    }
    assert_eq!(
        traces[0], traces[1],
        "trace identity must not depend on thread count"
    );
}

#[test]
fn fig12_driver_grid_matches_the_binary_configuration() {
    // The reduced grid is 2 models × 3 sizes × 3 couplings, in the
    // binary's historical nested-loop order (golden artifacts depend on
    // it).
    let spec = Fig12Driver::spec(false);
    let points = spec.points();
    assert_eq!(points.len(), 18);
    assert_eq!(points[0].str("model"), "Ising");
    assert_eq!(points[0].int("qubits"), 16);
    assert_eq!(points[0].num("j"), 0.25);
    assert_eq!(points[17].str("model"), "Heisenberg");
    assert_eq!(points[17].int("qubits"), 32);
    assert_eq!(points[17].num("j"), 1.0);
    // Full scale extends the ladder to 100 qubits.
    let full = Fig12Driver::spec(true);
    assert_eq!(full.num_points(), 36);
    assert!(full
        .points()
        .iter()
        .any(|p| p.int("qubits") == 100 && p.str("model") == "Heisenberg"));
}
