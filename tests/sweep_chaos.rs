//! Chaos suite for the sweep stack's fault containment
//! (`crates/sweep/src/{chaos,runner,farm}.rs`): deterministic planted
//! faults (panics, stalls past the point deadline, worker disconnects)
//! must quarantine the poisoned points as structured `~sweep-error` rows
//! while every healthy point's bytes stay identical to a clean run — at
//! any thread count, under `--shard`/`--merge`, and across a TCP worker
//! farm with a SIGKILLed worker. A later `--resume` without the fault
//! plan retries exactly the quarantined points and restores the
//! checked-in baseline byte-for-byte.

use eft_vqa_repro::prelude::*;
use eft_vqa_repro::sweep::jsonl::parse_row;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eftq-sweep-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn fresh(name: &str) -> PathBuf {
    let path = tmp(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap()
}

/// A 12-point toy grid whose evaluation is pure arithmetic: cheap enough
/// to rerun at several thread counts, rich enough (two axes, a
/// seed-derived field) to prove byte-identity and seed-stable retries.
fn toy_spec() -> SweepSpec {
    SweepSpec::new("chaos_toy")
        .axis_ints("n", [1, 2, 3, 4])
        .axis_nums("p", [0.25, 0.5, 0.75])
}

fn toy_eval(point: &SweepPoint, ctx: &PointCtx) -> Row {
    Row::new("chaos_toy")
        .int("n", point.int("n"))
        .num("p", point.num("p"))
        .num("value", point.int("n") as f64 * point.num("p"))
        // Retries must rerun the *same* computation: this field would
        // drift between attempts if the per-point seed were not stable.
        .int("seed_lo", (ctx.seed.seed() & 0xffff) as i64)
}

/// Options for a poisoned toy run: `plan` planted, first-failure
/// quarantine, and a deadline tight enough that a stall (which sleeps
/// for twice the deadline) reliably overruns it.
fn toy_opts(plan: &str, artifact: &Path) -> SweepOptions {
    SweepOptions {
        artifact: Some(artifact.to_path_buf()),
        point_timeout_secs: Some(0.05),
        fault_plan: Some(FaultPlan::parse(plan).unwrap()),
        ..SweepOptions::default()
    }
}

#[test]
fn planted_faults_quarantine_deterministically_at_any_thread_count() {
    // The tentpole contract, locally: a panic at point 3 and a stall at
    // point 7 do not kill the sweep — they become `~sweep-error` rows in
    // point order, and the whole artifact (good rows *and* error rows)
    // is byte-identical at every thread count.
    let spec = toy_spec();
    let clean = run_sweep(&spec, &SweepOptions::default(), toy_eval).unwrap();
    let reference = {
        let path = fresh("toy-poisoned-t1.jsonl");
        let report = run_sweep(&spec, &toy_opts("panic@3,stall@7", &path), toy_eval).unwrap();
        assert_eq!(report.rows.len(), 12);
        assert_eq!(report.quarantined, 2);
        assert_eq!(report.failed, 2);
        assert_eq!(report.retried, 0);
        assert_eq!(report.ok_rows().count(), 10);
        // The error rows carry the point's axes, the cause, and a
        // human-readable message quoting the configured deadline.
        let errors: Vec<&Row> = report.error_rows().collect();
        assert_eq!(errors[0].get_str("cause"), Some("panic"));
        assert_eq!(
            errors[0].get_str("message"),
            Some("chaos: planted panic at point 3")
        );
        assert_eq!(errors[1].get_str("cause"), Some("timeout"));
        assert_eq!(
            errors[1].get_str("message"),
            Some("evaluation exceeded the 0.05s point deadline")
        );
        for e in &errors {
            assert_eq!(e.get_str("spec"), Some("chaos_toy"));
            assert_eq!(e.get_int("attempts"), Some(1));
            assert!(e.get_int("n").is_some() && e.get_num("p").is_some());
        }
        // Every healthy point's row is exactly the clean run's row.
        let good: Vec<String> = report.ok_rows().map(Row::to_json_row).collect();
        let expected: Vec<String> = clean
            .rows
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3 && *i != 7)
            .map(|(_, r)| r.to_json_row())
            .collect();
        assert_eq!(good, expected);
        read(&path)
    };
    for threads in [4usize, 8] {
        let path = fresh(&format!("toy-poisoned-t{threads}.jsonl"));
        let opts = SweepOptions {
            threads,
            ..toy_opts("panic@3,stall@7", &path)
        };
        let report = run_sweep(&spec, &opts, toy_eval).unwrap();
        assert_eq!(report.quarantined, 2, "threads = {threads}");
        assert_eq!(read(&path), reference, "threads = {threads}");
    }
}

#[test]
fn transient_faults_heal_under_the_retry_budget() {
    // `xN` rules model transient faults: with `--retries 1` a point that
    // fails once and then heals produces its normal row, and the
    // artifact cannot be told apart from a never-poisoned run.
    let spec = toy_spec();
    let clean_path = fresh("toy-clean.jsonl");
    run_sweep(
        &spec,
        &SweepOptions {
            artifact: Some(clean_path.clone()),
            ..SweepOptions::default()
        },
        toy_eval,
    )
    .unwrap();
    let path = fresh("toy-healed.jsonl");
    let opts = SweepOptions {
        retries: 1,
        ..toy_opts("panic@2x1,stall@5x1", &path)
    };
    let report = run_sweep(&spec, &opts, toy_eval).unwrap();
    assert_eq!(report.failed, 2);
    assert_eq!(report.retried, 2);
    assert_eq!(report.quarantined, 0);
    assert_eq!(report.ok_rows().count(), 12);
    assert_eq!(read(&path), read(&clean_path));
}

#[test]
fn resume_retries_exactly_the_quarantined_points() {
    // Satellite 4: `--resume` over an artifact holding error rows keeps
    // every good row (zero recomputation), re-evaluates only the
    // quarantined points, and compacts the healed artifact back to the
    // clean bytes — no stale `~sweep-error` line left behind.
    let spec = toy_spec();
    let clean_path = fresh("toy-resume-clean.jsonl");
    run_sweep(
        &spec,
        &SweepOptions {
            artifact: Some(clean_path.clone()),
            ..SweepOptions::default()
        },
        toy_eval,
    )
    .unwrap();
    let path = fresh("toy-resume.jsonl");
    let poisoned = run_sweep(&spec, &toy_opts("panic@3,stall@7", &path), toy_eval).unwrap();
    assert_eq!(poisoned.quarantined, 2);
    // Resume without the fault plan, counting evaluations.
    let evals = AtomicUsize::new(0);
    let healed = run_sweep(
        &spec,
        &SweepOptions {
            artifact: Some(path.clone()),
            ..SweepOptions::default()
        },
        |p, ctx| {
            evals.fetch_add(1, Ordering::Relaxed);
            toy_eval(p, ctx)
        },
    )
    .unwrap();
    assert_eq!(evals.load(Ordering::Relaxed), 2, "only the quarantined");
    assert_eq!(healed.resumed, 10);
    assert_eq!(healed.computed, 2);
    assert_eq!(healed.quarantined, 0);
    assert_eq!(read(&path), read(&clean_path));
}

#[test]
fn shards_quarantine_independently_and_merge_reassembles_error_rows() {
    // The same plan poisons the same points whichever shard computes
    // them, and `--merge` carries the error rows through: the merged
    // artifact is byte-identical to the unsharded poisoned run.
    let spec = toy_spec();
    let whole_path = fresh("toy-shard-whole.jsonl");
    let whole = run_sweep(&spec, &toy_opts("panic@3,stall@7", &whole_path), toy_eval).unwrap();
    assert_eq!(whole.quarantined, 2);
    let shard_paths: Vec<PathBuf> = (0..2)
        .map(|k| {
            let path = fresh(&format!("toy-shard-{k}.jsonl"));
            let opts = SweepOptions {
                shard: Some(Shard { index: k, count: 2 }),
                ..toy_opts("panic@3,stall@7", &path)
            };
            run_sweep(&spec, &opts, toy_eval).unwrap();
            path
        })
        .collect();
    let merged_path = fresh("toy-shard-merged.jsonl");
    let merged = run_sweep(
        &spec,
        &SweepOptions {
            artifact: Some(merged_path.clone()),
            merge: shard_paths,
            ..SweepOptions::default()
        },
        |_, _| unreachable!("merge must not evaluate"),
    )
    .unwrap();
    assert_eq!(merged.merged, 12);
    assert_eq!(merged.quarantined, 2, "error rows carried through merge");
    assert_eq!(read(&merged_path), read(&whole_path));
}

#[test]
fn a_disconnect_fault_reconnects_with_backoff_and_converges() {
    // `disconnect@5x1` severs the TCP worker's socket on its first
    // encounter with point 5. The coordinator requeues the lease, the
    // worker reconnects (jittered exponential backoff) and the healed
    // second attempt completes: no error rows, clean bytes.
    let spec = toy_spec();
    let clean_path = fresh("toy-disc-clean.jsonl");
    run_sweep(
        &spec,
        &SweepOptions {
            artifact: Some(clean_path.clone()),
            ..SweepOptions::default()
        },
        toy_eval,
    )
    .unwrap();
    let path = fresh("toy-disc.jsonl");
    let addr = "127.0.0.1:47340";
    std::thread::scope(|scope| {
        let coordinator = scope.spawn(|| {
            run_sweep(
                &spec,
                &SweepOptions {
                    threads: 0,
                    artifact: Some(path.clone()),
                    farm: Some(addr.to_string()),
                    ..SweepOptions::default()
                },
                toy_eval,
            )
        });
        let worker = scope.spawn(|| {
            run_sweep(
                &spec,
                &SweepOptions {
                    worker: Some(addr.to_string()),
                    fault_plan: Some(FaultPlan::parse("disconnect@5x1").unwrap()),
                    ..SweepOptions::default()
                },
                toy_eval,
            )
        });
        let report = coordinator.join().unwrap().unwrap();
        assert_eq!(report.rows.len(), 12);
        assert_eq!(report.quarantined, 0, "a disconnect is not a failure");
        let worker_report = worker.join().unwrap().unwrap();
        assert_eq!(worker_report.computed, 12, "every point crossed the wire");
    });
    assert_eq!(read(&path), read(&clean_path));
}

// ---------------------------------------------------------------------
// Figure-12 acceptance: the poisoned sweep converges to the same bytes
// under --threads 8, --shard/--merge and a 3-worker farm with a
// SIGKILLed worker; removing the plan and resuming restores the
// checked-in baseline exactly.
// ---------------------------------------------------------------------

/// The checked-in reduced-scale Figure 12 baseline (stamp + 18 rows).
fn baseline_bytes() -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../ci/baselines/fig12.jsonl");
    std::fs::read(path).expect("ci/baselines/fig12.jsonl is checked in")
}

/// The fig12 fault plan for the acceptance run: a hard panic, a stall
/// past the deadline, and (effective on TCP workers only) a one-shot
/// disconnect.
const FIG12_PLAN: &str = "panic@3,stall@8,disconnect@5x1";
const FIG12_TIMEOUT: f64 = 2.0;

fn fig12_chaos_opts(artifact: &Path) -> SweepOptions {
    SweepOptions {
        artifact: Some(artifact.to_path_buf()),
        point_timeout_secs: Some(FIG12_TIMEOUT),
        fault_plan: Some(FaultPlan::parse(FIG12_PLAN).unwrap()),
        ..SweepOptions::default()
    }
}

/// Number of complete, parseable fig12 lines (data or error rows) in an
/// artifact — the progress signal for the kill timing.
fn streamed_rows(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    text.lines()
        .filter(|l| parse_row(l).is_ok_and(|r| r.label() == "fig12" || r.label() == "~sweep-error"))
        .count()
}

/// Spawns one of the env-gated helper tests below as a child process of
/// this same test binary (the sweep_farm.rs self-exec pattern).
fn spawn_helper(name: &str, envs: &[(&str, String)]) -> Child {
    let mut cmd = Command::new(std::env::current_exe().unwrap());
    cmd.arg(name)
        .arg("--exact")
        .arg("--nocapture")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn helper child")
}

/// Child-process body for the SIGKILL-a-poisoned-worker test: joins the
/// farm at `EFTQ_CHAOS_TEST_ADDR` carrying the same fault plan and
/// deadline as everyone else, slowed by `EFTQ_CHAOS_TEST_DELAY_MS` so
/// the parent can kill it mid-lease. A no-op under a normal run.
#[test]
fn helper_chaos_worker_child() {
    let Ok(addr) = std::env::var("EFTQ_CHAOS_TEST_ADDR") else {
        return;
    };
    let delay: u64 = std::env::var("EFTQ_CHAOS_TEST_DELAY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let driver = Fig12Driver::new(false);
    let _ = run_sweep(
        &Fig12Driver::spec(false),
        &SweepOptions {
            worker: Some(addr),
            point_timeout_secs: Some(FIG12_TIMEOUT),
            fault_plan: Some(FaultPlan::parse(FIG12_PLAN).unwrap()),
            ..SweepOptions::default()
        },
        |p, _| {
            std::thread::sleep(Duration::from_millis(delay));
            driver.eval(p)
        },
    );
}

#[test]
fn fig12_poisoned_sweep_converges_across_topologies_and_resume_restores_the_baseline() {
    let driver = Fig12Driver::new(false);
    let spec = Fig12Driver::spec(false);

    // Leg 1 — local, --threads 8: the reference poisoned artifact.
    let local_path = fresh("fig12-poisoned-local.jsonl");
    let local = run_sweep(
        &spec,
        &SweepOptions {
            threads: 8,
            ..fig12_chaos_opts(&local_path)
        },
        |p, _| driver.eval(p),
    )
    .unwrap();
    assert_eq!(local.rows.len(), 18);
    assert_eq!(local.quarantined, 2, "panic@3 and stall@8");
    assert_eq!(local.ok_rows().count(), 16);
    let causes: Vec<_> = local
        .error_rows()
        .filter_map(|r| r.get_str("cause"))
        .collect();
    assert_eq!(causes, ["panic", "timeout"]);
    let reference = read(&local_path);
    // Every good row matches the checked-in baseline line for line.
    let baseline = String::from_utf8(baseline_bytes()).unwrap();
    let poisoned_text = String::from_utf8(reference.clone()).unwrap();
    let good: Vec<&str> = poisoned_text
        .lines()
        .filter(|l| !l.contains("~sweep-error"))
        .collect();
    let expected: Vec<&str> = baseline
        .lines()
        .enumerate()
        // Line 0 is the stamp; data line i covers point i - 1.
        .filter(|(i, _)| *i != 4 && *i != 9)
        .map(|(_, l)| l)
        .collect();
    assert_eq!(good, expected);

    // Leg 2 — --shard 0/2 + 1/2, then --merge.
    let shard_paths: Vec<PathBuf> = (0..2)
        .map(|k| {
            let path = fresh(&format!("fig12-poisoned-shard{k}.jsonl"));
            let opts = SweepOptions {
                threads: 4,
                shard: Some(Shard { index: k, count: 2 }),
                ..fig12_chaos_opts(&path)
            };
            run_sweep(&spec, &opts, |p, _| driver.eval(p)).unwrap();
            path
        })
        .collect();
    let merged_path = fresh("fig12-poisoned-merged.jsonl");
    let merged = run_sweep(
        &spec,
        &SweepOptions {
            artifact: Some(merged_path.clone()),
            merge: shard_paths,
            ..SweepOptions::default()
        },
        |_, _| unreachable!("merge must not evaluate"),
    )
    .unwrap();
    assert_eq!(merged.quarantined, 2);
    assert_eq!(read(&merged_path), reference, "shard+merge leg");

    // Leg 3 — a 3-worker farm (one in-process thread, one TCP worker
    // thread, one TCP worker child process), the child SIGKILLed
    // mid-lease. Workers report caught faults as `Failed` instead of
    // dying; the coordinator quarantines and the bytes still converge.
    let farm_path = fresh("fig12-poisoned-farm.jsonl");
    let addr = "127.0.0.1:47341";
    std::thread::scope(|scope| {
        let coordinator = scope.spawn(|| {
            run_sweep(
                &spec,
                &SweepOptions {
                    threads: 1,
                    farm: Some(addr.to_string()),
                    ..fig12_chaos_opts(&farm_path)
                },
                |p, _| {
                    std::thread::sleep(Duration::from_millis(150));
                    driver.eval(p)
                },
            )
        });
        let tcp_worker = scope.spawn(|| {
            let worker_driver = Fig12Driver::new(false);
            run_sweep(
                &spec,
                &SweepOptions {
                    worker: Some(addr.to_string()),
                    point_timeout_secs: Some(FIG12_TIMEOUT),
                    fault_plan: Some(FaultPlan::parse(FIG12_PLAN).unwrap()),
                    ..SweepOptions::default()
                },
                |p, _| {
                    std::thread::sleep(Duration::from_millis(150));
                    worker_driver.eval(p)
                },
            )
        });
        let mut child = spawn_helper(
            "helper_chaos_worker_child",
            &[
                ("EFTQ_CHAOS_TEST_ADDR", addr.to_string()),
                ("EFTQ_CHAOS_TEST_DELAY_MS", "400".to_string()),
            ],
        );
        let deadline = Instant::now() + Duration::from_secs(120);
        while streamed_rows(&farm_path) < 3 {
            assert!(Instant::now() < deadline, "farm never streamed rows");
            std::thread::sleep(Duration::from_millis(25));
        }
        child.kill().expect("SIGKILL the worker");
        let status = child.wait().unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::process::ExitStatusExt;
            assert_eq!(status.signal(), Some(9), "worker died by SIGKILL");
        }
        let report = coordinator.join().unwrap().unwrap();
        assert_eq!(report.rows.len(), 18);
        assert_eq!(report.quarantined, 2, "farm leg");
        // The surviving TCP worker outlives the sweep's failures.
        let _ = tcp_worker.join().unwrap().unwrap();
    });
    assert_eq!(read(&farm_path), reference, "farm leg");

    // Leg 4 — remove the fault plan and --resume the poisoned artifact:
    // only the two quarantined points recompute, the artifact compacts,
    // and the bytes are exactly the checked-in baseline again.
    let evals = AtomicUsize::new(0);
    let healed = run_sweep(
        &spec,
        &SweepOptions {
            threads: 2,
            artifact: Some(local_path.clone()),
            ..SweepOptions::default()
        },
        |p, _| {
            evals.fetch_add(1, Ordering::Relaxed);
            driver.eval(p)
        },
    )
    .unwrap();
    assert_eq!(evals.load(Ordering::Relaxed), 2, "only the quarantined");
    assert_eq!(healed.resumed, 16);
    assert_eq!(healed.quarantined, 0);
    assert_eq!(read(&local_path), baseline_bytes());
}
