//! Cross-simulator consistency: the three simulation substrates must
//! agree wherever their domains overlap.

use eftq_circuit::ansatz::{fully_connected_hea, linear_hea};
use eftq_circuit::transpile::{lower_clifford_rotations, rx_to_rz};
use eftq_circuit::Circuit;
use eftq_numerics::SeedSequence;
use eftq_pauli::{PauliString, PauliSum};
use eftq_stabilizer::{estimate_energy, StabilizerNoise, Tableau};
use eftq_statesim::{DensityMatrix, StateVector};
use rand::Rng;

fn random_clifford_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = SeedSequence::new(seed).rng();
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        match rng.gen_range(0..8) {
            0 => {
                c.h(rng.gen_range(0..n));
            }
            1 => {
                c.s(rng.gen_range(0..n));
            }
            2 => {
                c.sdg(rng.gen_range(0..n));
            }
            3 => {
                c.x(rng.gen_range(0..n));
            }
            4 => {
                c.rz(rng.gen_range(0..n), std::f64::consts::FRAC_PI_2);
            }
            5 => {
                c.rx(rng.gen_range(0..n), std::f64::consts::PI);
            }
            _ => {
                let a = rng.gen_range(0..n);
                let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                if rng.gen_bool(0.5) {
                    c.cx(a, b);
                } else {
                    c.cz(a, b);
                }
            }
        }
    }
    c
}

fn random_observable(n: usize, terms: usize, seed: u64) -> PauliSum {
    let mut rng = SeedSequence::new(seed).derive("obs").rng();
    let mut h = PauliSum::new(n);
    for _ in 0..terms {
        let letters: Vec<eftq_pauli::Pauli> = (0..n)
            .map(|_| eftq_pauli::Pauli::ALL[rng.gen_range(0..4usize)])
            .collect();
        h.push(rng.gen::<f64>() - 0.5, PauliString::from_paulis(letters));
    }
    h
}

#[test]
fn tableau_matches_statevector_on_random_cliffords() {
    for seed in 0..15u64 {
        let n = 3 + (seed as usize % 3);
        let circuit = random_clifford_circuit(n, 40, seed);
        let h = random_observable(n, 12, seed);
        let psi = StateVector::from_circuit(&circuit);
        let mut tableau = Tableau::new(n);
        tableau.run(&circuit);
        let sv_energy = psi.expectation(&h);
        let tb_energy = tableau.energy(&h);
        assert!(
            (sv_energy - tb_energy).abs() < 1e-9,
            "seed {seed}: sv {sv_energy} vs tableau {tb_energy}"
        );
    }
}

#[test]
fn density_matrix_matches_statevector_noiselessly() {
    let ansatz = fully_connected_hea(5, 2);
    let params: Vec<f64> = (0..ansatz.num_params()).map(|i| 0.17 * i as f64).collect();
    let circuit = ansatz.bind(&params);
    let psi = StateVector::from_circuit(&circuit);
    let rho = DensityMatrix::from_circuit(&circuit);
    let h = random_observable(5, 20, 99);
    assert!((psi.expectation(&h) - rho.expectation(&h)).abs() < 1e-9);
    assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-9);
}

#[test]
fn noiseless_stabilizer_estimate_matches_statevector_for_clifford_ansatz() {
    let ansatz = linear_hea(6, 1);
    let ks: Vec<u8> = (0..ansatz.num_params())
        .map(|i| ((i * 3) % 4) as u8)
        .collect();
    let circuit = ansatz.bind_clifford(&ks);
    let h = eft_vqa::hamiltonians::ising_1d(6, 1.0);
    let sv = StateVector::from_circuit(&circuit).expectation(&h);
    let stab = estimate_energy(
        &circuit,
        &h,
        &StabilizerNoise::noiseless(),
        1,
        SeedSequence::new(0),
    )
    .energy;
    assert!((sv - stab).abs() < 1e-9, "{sv} vs {stab}");
}

#[test]
fn transpile_passes_preserve_statevector_semantics() {
    let mut c = Circuit::new(3);
    c.rx(0, 0.7)
        .ry(1, 1.3)
        .rz(2, std::f64::consts::FRAC_PI_2)
        .cx(0, 1)
        .rx(2, std::f64::consts::PI)
        .rz(0, 0.4);
    let reference = StateVector::from_circuit(&c);
    let lowered = lower_clifford_rotations(&rx_to_rz(&c));
    let transformed = StateVector::from_circuit(&lowered);
    assert!(
        (reference.fidelity(&transformed) - 1.0).abs() < 1e-9,
        "transpilation changed the state"
    );
    // After the passes, only Rz-type non-Clifford rotations remain.
    for g in lowered.gates() {
        if g.is_symbolic() || !g.is_clifford(1e-9) {
            assert_eq!(g.name(), "rz", "{g}");
        }
    }
}

#[test]
fn noisy_dm_and_noisy_stabilizer_agree_on_depolarized_bell_zz() {
    // Both substrates model 2q depolarizing identically: ⟨ZZ⟩ of a Bell
    // pair after one noisy CNOT is 1 − 16p/15.
    let p = 0.12;
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    let mut zz = PauliSum::new(2);
    zz.push_str(1.0, "ZZ");

    let mut dm_noise = eftq_statesim::noise::NoiseModel::noiseless();
    dm_noise.depol_2q = p;
    let (rho, _) = eftq_statesim::noise::run_noisy(&c, &dm_noise);
    let dm_value = rho.expectation(&zz);

    let mut st_noise = StabilizerNoise::noiseless();
    st_noise.depol_2q = p;
    let mc = estimate_energy(&c, &zz, &st_noise, 4000, SeedSequence::new(5));

    let analytic = 1.0 - 16.0 * p / 15.0;
    assert!((dm_value - analytic).abs() < 1e-10);
    assert!(
        (mc.energy - analytic).abs() < 0.03,
        "{} vs {analytic}",
        mc.energy
    );
}
