//! End-to-end regime comparisons: the pipelines behind Figures 12-15 run
//! at test scale and must reproduce the paper's qualitative results.

use eft_vqa::clifford_vqe::{
    clifford_vqe_in_regime, genome_energy, noiseless_reference_energy, reevaluate_genome,
    CliffordVqeConfig,
};
use eft_vqa::hamiltonians::{heisenberg_1d, ising_1d, molecular, Molecule};
use eft_vqa::vqe::{run_vqe, VqeConfig, VqeOptimizer};
use eft_vqa::{relative_improvement, ExecutionRegime};
use eftq_circuit::ansatz::{blocked_all_to_all, fully_connected_hea};
use eftq_optim::GeneticConfig;

fn quick_clifford() -> CliffordVqeConfig {
    // Large enough that both regimes' searches reliably reach near-optimal
    // genomes (so γ reflects the regimes' noise floors, not search luck),
    // small enough that the suite stays fast. The frame-batched estimator,
    // fitness memoization, and threaded evaluation make this budget far
    // cheaper than the seed's smaller one.
    CliffordVqeConfig {
        ga: GeneticConfig {
            population: 48,
            generations: 80,
            threads: 4,
            ..GeneticConfig::default()
        },
        shots: 16,
        ..CliffordVqeConfig::default()
    }
}

/// The Figure-13 pipeline at 6 qubits: density-matrix VQE, γ > 1.
#[test]
fn dm_vqe_gamma_above_one() {
    let h = ising_1d(6, 0.5);
    let e0 = h.ground_energy_default().unwrap();
    let ansatz = fully_connected_hea(6, 1);
    let config = VqeConfig {
        max_iters: 150,
        restarts: 2,
        ..VqeConfig::default()
    };
    let pqec = run_vqe(&ansatz, &h, &ExecutionRegime::pqec_default(), &config);
    let nisq = run_vqe(&ansatz, &h, &ExecutionRegime::nisq_default(), &config);
    let gamma = relative_improvement(e0, pqec.best_energy, nisq.best_energy);
    assert!(gamma > 1.0, "gamma = {gamma}");
    // Both are variational: never below the exact ground energy by more
    // than numerical noise (pQEC noise can push measured energy below E0
    // only through the tiny logical error channels).
    assert!(pqec.best_energy > e0 - 0.5);
}

/// The Figure-12 pipeline at 10-16 qubits: Clifford VQE with the genetic
/// search, γ > 1 for Ising and Heisenberg.
#[test]
fn clifford_vqe_gamma_above_one() {
    for (h, label) in [
        (ising_1d(12, 1.0), "Ising-12"),
        (heisenberg_1d(12, 0.5), "Heisenberg-12"),
    ] {
        let ansatz = fully_connected_hea(12, 1);
        let cfg = quick_clifford();
        let e0 = noiseless_reference_energy(&ansatz, &h, &cfg);
        let pqec = clifford_vqe_in_regime(&ansatz, &h, &ExecutionRegime::pqec_default(), &cfg);
        let nisq = clifford_vqe_in_regime(&ansatz, &h, &ExecutionRegime::nisq_default(), &cfg);
        // Re-evaluate both winners with an unbiased 128-shot estimate: the
        // few-shot search exploits sampling noise, which would otherwise
        // flatter the noisier regime.
        let e_pqec = reevaluate_genome(
            &ansatz,
            &h,
            &ExecutionRegime::pqec_default().stabilizer_noise(),
            &pqec.best_genome,
            128,
            11,
            2,
        );
        let e_nisq = reevaluate_genome(
            &ansatz,
            &h,
            &ExecutionRegime::nisq_default().stabilizer_noise(),
            &nisq.best_genome,
            128,
            11,
            2,
        );
        // E0 is "the lowest stabilizer state energy obtained in the
        // absence of noise" (Section 5.3.1) — across everything we saw.
        let e0 = e0
            .min(genome_energy(&ansatz, &h, &pqec.best_genome))
            .min(genome_energy(&ansatz, &h, &nisq.best_genome));
        let gamma = relative_improvement(e0, e_pqec, e_nisq);
        assert!(
            gamma > 1.0,
            "{label}: gamma = {gamma} ({e_pqec} vs {e_nisq}, e0 {e0})"
        );
    }
}

/// The Figure-14 pipeline: blocked vs FCHE under pQEC both produce
/// finite, comparable energies; the blocked schedule is 2x faster.
#[test]
fn ansatz_comparison_pipeline() {
    let h = ising_1d(16, 1.0);
    let cfg = quick_clifford();
    let regime = ExecutionRegime::pqec_default();
    let blocked = blocked_all_to_all(16, 1);
    let fche = fully_connected_hea(16, 1);
    let eb = clifford_vqe_in_regime(&blocked, &h, &regime, &cfg);
    let ef = clifford_vqe_in_regime(&fche, &h, &regime, &cfg);
    assert!(eb.best_energy.is_finite() && ef.best_energy.is_finite());
    // Schedule claim (Section 6.2): blocked needs < half the FCHE cycles.
    use eftq_layout::layouts::LayoutModel;
    use eftq_layout::schedule::{schedule_ansatz, ScheduleConfig};
    let sb = schedule_ansatz(
        eftq_circuit::AnsatzKind::BlockedAllToAll,
        16,
        1,
        &LayoutModel::proposed(),
        &ScheduleConfig::default(),
    );
    let sf = schedule_ansatz(
        eftq_circuit::AnsatzKind::FullyConnectedHea,
        16,
        1,
        &LayoutModel::proposed(),
        &ScheduleConfig::default(),
    );
    assert!(
        2 * sb.cycles <= sf.cycles + 20,
        "{} vs {}",
        sb.cycles,
        sf.cycles
    );
}

/// The Figure-15 pipeline: VarSaw mitigation never hurts and typically
/// helps convergence under readout error.
#[test]
fn varsaw_pipeline() {
    let h = heisenberg_1d(5, 1.0);
    let ansatz = fully_connected_hea(5, 1);
    let base = VqeConfig {
        max_iters: 80,
        restarts: 2,
        ..VqeConfig::default()
    };
    for regime in [
        ExecutionRegime::nisq_default(),
        ExecutionRegime::pqec_default(),
    ] {
        let plain = run_vqe(&ansatz, &h, &regime, &base);
        let mitigated = run_vqe(
            &ansatz,
            &h,
            &regime,
            &VqeConfig {
                mitigate_measurement: true,
                ..base
            },
        );
        assert!(
            mitigated.best_energy <= plain.best_energy + 0.05,
            "{}: {} vs {}",
            regime.name(),
            mitigated.best_energy,
            plain.best_energy
        );
    }
}

/// Chemistry pipeline: a synthetic molecular Hamiltonian flows through
/// grouping, Lanczos and the Clifford VQE.
#[test]
fn chemistry_pipeline() {
    let h = molecular(Molecule::LiH, 1.0);
    assert_eq!(h.num_terms(), 631);
    let e0 = h.ground_energy_default().unwrap();
    assert!(e0.is_finite() && e0 < 0.0);
    // Measurement grouping compresses the 631 terms substantially.
    let settings = eft_vqa::varsaw::measurement_settings(&h);
    assert!(settings < h.num_terms() / 2, "{settings}");
    // A short Clifford VQE produces a finite upper bound on E0.
    let ansatz = fully_connected_hea(12, 1);
    let out = clifford_vqe_in_regime(
        &ansatz,
        &h,
        &ExecutionRegime::pqec_default(),
        &quick_clifford(),
    );
    assert!(out.best_energy >= e0 - 1.0);
}

/// All three optimizers drive the same problem to a finite answer.
#[test]
fn optimizer_matrix() {
    let h = ising_1d(4, 0.25);
    let ansatz = fully_connected_hea(4, 1);
    for opt in [
        VqeOptimizer::NelderMead,
        VqeOptimizer::CoordinateSearch,
        VqeOptimizer::Spsa,
    ] {
        let out = run_vqe(
            &ansatz,
            &h,
            &ExecutionRegime::pqec_default(),
            &VqeConfig {
                optimizer: opt,
                max_iters: 30,
                restarts: 1,
                ..VqeConfig::default()
            },
        );
        assert!(out.best_energy.is_finite());
    }
}
