//! Statistical equivalence of the batched Bernoulli sampler with the
//! per-call `gen_bool` reference, and thread-count invariance of the
//! compiled noise programs.
//!
//! The batched engine ([`BernoulliWords`] + [`NoiseProgram`]) must be a
//! drop-in statistical replacement for drawing one `rng.gen_bool(p)` per
//! (site, shot) trial: same marginal rate at every probability, same
//! letter distributions, and — because shot batches derive their RNG
//! streams from their batch index — results that do not depend on how
//! many worker threads evaluated them.

use eftq_circuit::Circuit;
use eftq_numerics::{BernoulliWords, SeedSequence};
use eftq_pauli::PauliSum;
use eftq_stabilizer::{
    estimate_energy, estimate_energy_program, estimate_energy_threaded, run_noisy_frames,
    run_noisy_frames_percall, sample_energy_grouped, GroupedObservable, NoiseProgram, PauliFrames,
    StabilizerNoise,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Empirical rate of the batched sampler versus the per-call reference,
/// across the sparse (geometric-skip) and dense (bit-slice) regimes: both
/// must sit within a 5σ binomial band of `p`, and within a combined band
/// of each other.
#[test]
fn batched_rate_matches_gen_bool_reference() {
    for (p, trials, seed) in [
        (0.0005, 2_000_000, 1u64),
        (0.004, 500_000, 2),
        (0.03, 400_000, 3),
        (0.08, 300_000, 4),
        (0.35, 200_000, 5),
        (0.85, 200_000, 6),
    ] {
        let sigma = (p * (1.0 - p) / trials as f64).sqrt();

        let mut sampler = BernoulliWords::new(p);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batched_hits = 0usize;
        sampler.for_each_hit(trials, &mut rng, |_| batched_hits += 1);
        let batched = batched_hits as f64 / trials as f64;

        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let mut percall_hits = 0usize;
        for _ in 0..trials {
            if rng.gen_bool(p) {
                percall_hits += 1;
            }
        }
        let percall = percall_hits as f64 / trials as f64;

        assert!(
            (batched - p).abs() < 5.0 * sigma,
            "p={p}: batched {batched}"
        );
        assert!(
            (percall - p).abs() < 5.0 * sigma,
            "p={p}: percall {percall}"
        );
        assert!(
            (batched - percall).abs() < 7.1 * sigma,
            "p={p}: batched {batched} vs percall {percall}"
        );
    }
}

/// The word-parallel rejection draw behind the masked 2q injector must
/// leave the 15 non-identity two-qubit Paulis uniform, matching the
/// per-call `gen_range(1..16)` reference draw.
#[test]
fn masked_2q_letters_are_uniform_over_fifteen_pairs() {
    let shots = 64_000;
    let mut frames = PauliFrames::new(2, shots);
    let mask = vec![!0u64; shots / 64];
    let mut rng = StdRng::seed_from_u64(9);
    frames.inject_depolarizing_2q_masked(0, 1, &mask, &mut rng);
    let mut counts = [0usize; 16];
    for s in 0..shots {
        let f = frames.frame(s);
        let idx = |p: eftq_pauli::Pauli| p.x_bit() as usize * 2 + p.z_bit() as usize;
        counts[idx(f.pauli_at(0)) * 4 + idx(f.pauli_at(1))] += 1;
    }
    assert_eq!(counts[0], 0, "identity pair must never be injected");
    let expect = shots as f64 / 15.0;
    let sigma = (shots as f64 * (1.0 / 15.0) * (14.0 / 15.0)).sqrt();
    for (i, &c) in counts.iter().enumerate().skip(1) {
        assert!(
            (c as f64 - expect).abs() < 5.0 * sigma,
            "pair {i}: {c} vs {expect}"
        );
    }
}

fn nisq_like() -> StabilizerNoise {
    StabilizerNoise {
        depol_1q: 0.003,
        depol_2q: 0.015,
        depol_rz: 0.0,
        depol_rot_xy: 0.003,
        meas_flip: 0.01,
        idle: eftq_stabilizer::noise::TwirledIdle {
            px: 0.002,
            py: 0.002,
            pz: 0.004,
        },
    }
}

fn ghz_chain(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

/// Frame-level equivalence in distribution: for a fixed circuit, the
/// batched program and the per-call reference must flip each stabilizer
/// at the same rate.
#[test]
fn batched_frames_match_percall_flip_rates() {
    let n = 6;
    let c = ghz_chain(n);
    let noise = nisq_like();
    let shots = 60_000;
    let batched = run_noisy_frames(&c, &noise, shots, SeedSequence::new(21));
    let mut rng = StdRng::seed_from_u64(22);
    let percall = run_noisy_frames_percall(&c, &noise, shots, &mut rng);
    for p in ["ZZIIII", "IZZIII", "IIIZZI", "XXXXXX"] {
        let pauli: eftq_pauli::PauliString = p.parse().unwrap();
        let rb = batched.flip_count(&pauli) as f64 / shots as f64;
        let rp = percall.flip_count(&pauli) as f64 / shots as f64;
        // Flip rates are a few percent; 5σ on the pooled binomial.
        let pool = (0.5 * (rb + rp)).max(1e-4);
        let sigma = (2.0 * pool * (1.0 - pool) / shots as f64).sqrt();
        assert!((rb - rp).abs() < 5.0 * sigma, "{p}: batched {rb} vs {rp}");
    }
}

/// `estimate_energy` must return bit-identical results for
/// `threads ∈ {1, 2, 8}` at a fixed seed — the per-batch seed derivation
/// makes thread count (and scheduling) invisible.
#[test]
fn estimate_energy_is_thread_count_invariant() {
    let n = 8;
    let c = ghz_chain(n);
    let mut h = PauliSum::new(n);
    h.push_str(1.0, "ZZZZZZZZ");
    h.push_str(-0.5, "XXXXXXXX");
    h.push_str(0.25, "ZIIIIIIZ");
    let noise = nisq_like();
    for shots in [1usize, 255, 256, 257, 1000, 4096] {
        let seed = SeedSequence::new(1234);
        let base = estimate_energy(&c, &h, &noise, shots, seed);
        for threads in [2usize, 8] {
            let t = estimate_energy_threaded(&c, &h, &noise, shots, seed, threads);
            assert_eq!(base, t, "shots {shots} threads {threads}");
        }
        assert!(base.energy.is_finite());
    }
}

/// The compiled program itself is reusable and deterministic: one
/// compilation serves many (shots, seed, threads) combinations.
#[test]
fn compiled_program_is_reusable_across_runs() {
    let c = ghz_chain(5);
    let noise = nisq_like();
    let program = NoiseProgram::compile(&c, &noise);
    assert!(program.num_sites() > 0);
    let a = program.run_threaded(777, SeedSequence::new(3), 4);
    let b = program.run(777, SeedSequence::new(3));
    assert_eq!(a, b);
    let c2 = program.run(777, SeedSequence::new(4));
    assert_ne!(a, c2, "different seeds must give different frames");
}

/// Sparse NISQ rates drive the geometric-skip path; the injected error
/// mass must still match the per-call reference through a full energy
/// estimate (GHZ ⟨ZZ…Z⟩ damping).
#[test]
fn sparse_path_energy_matches_percall_model() {
    let n = 10;
    let c = ghz_chain(n);
    let mut h = PauliSum::new(n);
    h.push_str(1.0, &"Z".repeat(n));
    let mut noise = StabilizerNoise::noiseless();
    noise.depol_2q = 0.002; // firmly in geometric-skip territory
    let shots = 40_000;
    let batched = estimate_energy(&c, &h, &noise, shots, SeedSequence::new(31));
    let mut rng = StdRng::seed_from_u64(32);
    let percall = run_noisy_frames_percall(&c, &noise, shots, &mut rng);
    let pauli: eftq_pauli::PauliString = "Z".repeat(n).parse().unwrap();
    let percall_energy = 1.0 - 2.0 * percall.flip_count(&pauli) as f64 / shots as f64;
    let tol = 5.0 * batched.std_error.max(1e-3);
    assert!(
        (batched.energy - percall_energy).abs() < 2.0 * tol,
        "batched {} vs percall {percall_energy}",
        batched.energy
    );
}

/// The group-level shot sampler applies readout error physically (bit
/// flips on shared outcome words) where the damping estimator folds it
/// into per-term `(1-2p)^w` factors — different mechanisms, same
/// expectation value. Both estimators run over the same compiled
/// program and must agree within a 5σ band of their combined standard
/// errors, on a Hamiltonian whose terms span dense (collapse) and
/// sparse (direct) groups.
#[test]
fn grouped_sampling_matches_damping_estimator() {
    let n = 6;
    let c = ghz_chain(n);
    let mut h = PauliSum::new(n);
    // TFIM-style Z/X groups plus a dense Y-basis group.
    for q in 0..n - 1 {
        let mut s = vec!['I'; n];
        s[q] = 'Z';
        s[q + 1] = 'Z';
        h.push_str(-1.0, &s.iter().collect::<String>());
    }
    for q in 0..n {
        let mut s = vec!['I'; n];
        s[q] = 'X';
        h.push_str(-0.5, &s.iter().collect::<String>());
    }
    h.push_str(0.25, &"Y".repeat(n));
    let noise = nisq_like();
    let program = NoiseProgram::compile(&c, &noise);
    let grouped = GroupedObservable::compile(&h);
    let shots = 30_000;
    let damped = estimate_energy_program(
        &c,
        &h,
        &program,
        noise.meas_flip,
        shots,
        SeedSequence::new(41),
        1,
    );
    let sampled = sample_energy_grouped(
        &c,
        &grouped,
        &program,
        noise.meas_flip,
        shots,
        SeedSequence::new(42),
        1,
    );
    let sigma = (damped.std_error.powi(2) + sampled.std_error.powi(2))
        .sqrt()
        .max(1e-4);
    assert!(
        (damped.energy - sampled.energy).abs() < 5.0 * sigma,
        "damped {} ± {} vs sampled {} ± {}",
        damped.energy,
        damped.std_error,
        sampled.energy,
        sampled.std_error
    );
}

/// `sample_energy_grouped` must be deterministic in its seed and
/// invisible to thread count, like every other estimator in the crate.
#[test]
fn grouped_sampling_is_seed_deterministic_and_thread_invariant() {
    let n = 5;
    let c = ghz_chain(n);
    let mut h = PauliSum::new(n);
    h.push_str(1.0, "ZZZZZ");
    h.push_str(-0.5, "XXXXX");
    h.push_str(0.25, "ZIIIZ");
    let noise = nisq_like();
    let program = NoiseProgram::compile(&c, &noise);
    let grouped = GroupedObservable::compile(&h);
    let seed = SeedSequence::new(7);
    let base = sample_energy_grouped(&c, &grouped, &program, noise.meas_flip, 900, seed, 1);
    for threads in [2usize, 8] {
        let t = sample_energy_grouped(&c, &grouped, &program, noise.meas_flip, 900, seed, threads);
        assert_eq!(base, t, "threads {threads}");
    }
    let reseeded = sample_energy_grouped(
        &c,
        &grouped,
        &program,
        noise.meas_flip,
        900,
        SeedSequence::new(8),
        1,
    );
    assert_ne!(
        base, reseeded,
        "different seeds must give different shot noise"
    );
    assert!(base.energy.is_finite() && base.std_error >= 0.0);
}
