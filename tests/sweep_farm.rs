//! Fault-injection suite for the sweep farm (`crates/sweep/src/farm.rs`):
//! coordinator/worker runs over real TCP sockets must produce artifacts
//! byte-identical to the checked-in `ci/baselines/fig12.jsonl` no matter
//! how many workers join, which of them are SIGKILLed mid-lease, whether
//! the coordinator itself is killed and resumed, or what garbage a
//! hostile client writes into the wire protocol.
//!
//! The SIGKILL tests use the self-exec pattern: the env-gated
//! `helper_*_child` tests below are launched as real child processes
//! (`current_exe()` + `--exact`) so the kill is a genuine signal 9
//! against a live socket, not a simulated disconnect.

use eft_vqa_repro::prelude::*;
use eft_vqa_repro::sweep::farm::{Completion, FarmState};
use eft_vqa_repro::sweep::jsonl::parse_row;
use eft_vqa_repro::sweep::protocol::Msg;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The checked-in reduced-scale Figure 12 baseline: one `~sweep-config`
/// stamp plus 18 data rows.
fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../ci/baselines/fig12.jsonl")
}

fn baseline_bytes() -> Vec<u8> {
    std::fs::read(baseline_path()).expect("ci/baselines/fig12.jsonl is checked in")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eftq-sweep-farm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Farm coordinator options over the fig12 grid (reduced scale, like
/// the baseline): `threads` local workers, leasing on `addr`.
fn farm_opts(addr: &str, threads: usize, artifact: &Path) -> SweepOptions {
    SweepOptions {
        threads,
        artifact: Some(artifact.to_path_buf()),
        farm: Some(addr.to_string()),
        ..SweepOptions::default()
    }
}

fn worker_opts(addr: &str, threads: usize) -> SweepOptions {
    SweepOptions {
        threads,
        worker: Some(addr.to_string()),
        ..SweepOptions::default()
    }
}

/// Number of complete, parseable fig12 data lines in an artifact (the
/// stamp and any torn final line excluded).
fn streamed_rows(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    text.lines()
        .filter(|l| parse_row(l).is_ok_and(|r| r.label() == "fig12"))
        .count()
}

#[test]
fn single_process_threads8_run_matches_the_checked_in_baseline() {
    // The anchor for every farm assertion below: the plain (non-farm)
    // engine still reproduces the checked-in bytes.
    let path = tmp("threads8.jsonl");
    let _ = std::fs::remove_file(&path);
    let driver = Fig12Driver::new(false);
    let report = run_sweep(
        &Fig12Driver::spec(false),
        &SweepOptions {
            threads: 8,
            artifact: Some(path.clone()),
            ..SweepOptions::default()
        },
        |p, _| driver.eval(p),
    )
    .unwrap();
    assert_eq!(report.rows.len(), 18);
    assert_eq!(std::fs::read(&path).unwrap(), baseline_bytes());
}

#[test]
fn farm_with_local_workers_is_byte_identical_to_the_baseline() {
    // Satellite 1, local half: a coordinator driving 1, 2 and 4 local
    // worker threads through the lease state machine (no remote
    // workers) converges to the --threads 8 (= baseline) artifact.
    let driver = Fig12Driver::new(false);
    let spec = Fig12Driver::spec(false);
    for (i, workers) in [1usize, 2, 4].into_iter().enumerate() {
        let path = tmp(&format!("farm-local-{workers}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let addr = format!("127.0.0.1:{}", 47310 + i);
        let report = run_sweep(&spec, &farm_opts(&addr, workers, &path), |p, _| {
            driver.eval(p)
        })
        .unwrap();
        assert_eq!(report.rows.len(), 18, "{workers} local workers");
        assert_eq!(report.computed, 18, "{workers} local workers");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            baseline_bytes(),
            "{workers} local workers"
        );
    }
}

#[test]
fn farm_with_tcp_workers_is_byte_identical_to_the_baseline() {
    // Satellite 1, distributed half: a coordinate-only process
    // (--threads 0) plus 1, 2 and 4 TCP workers. Every row crosses a
    // real socket, and the artifact still cannot tell.
    let driver = Fig12Driver::new(false);
    let spec = Fig12Driver::spec(false);
    for (i, workers) in [1usize, 2, 4].into_iter().enumerate() {
        let path = tmp(&format!("farm-tcp-{workers}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let addr = format!("127.0.0.1:{}", 47320 + i);
        std::thread::scope(|scope| {
            let coordinator = scope
                .spawn(|| run_sweep(&spec, &farm_opts(&addr, 0, &path), |p, _| driver.eval(p)));
            let joiners: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // Each worker evaluates through its own driver
                        // (own caches), like a separate process would.
                        let worker_driver = Fig12Driver::new(false);
                        run_sweep(&spec, &worker_opts(&addr, 1), |p, _| worker_driver.eval(p))
                    })
                })
                .collect();
            let report = coordinator.join().unwrap().unwrap();
            assert_eq!(report.rows.len(), 18, "{workers} tcp workers");
            let worker_total: usize = joiners
                .into_iter()
                .map(|j| j.join().unwrap().unwrap().computed)
                .sum();
            // A pure coordinator computes nothing itself.
            assert_eq!(worker_total, 18, "{workers} tcp workers");
        });
        assert_eq!(
            std::fs::read(&path).unwrap(),
            baseline_bytes(),
            "{workers} tcp workers"
        );
    }
}

/// Spawns one of the env-gated helper tests below as a child process of
/// this same test binary.
fn spawn_helper(name: &str, envs: &[(&str, String)]) -> Child {
    let mut cmd = Command::new(std::env::current_exe().unwrap());
    cmd.arg(name)
        .arg("--exact")
        .arg("--nocapture")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn helper child")
}

/// Child-process body for the SIGKILL-a-worker test: joins the farm at
/// `EFTQ_FARM_TEST_ADDR` as a worker whose evaluations are slowed by
/// `EFTQ_FARM_TEST_DELAY_MS` (so the parent can reliably kill it
/// mid-lease). A no-op under a normal test run (env unset).
#[test]
fn helper_farm_worker_child() {
    let Ok(addr) = std::env::var("EFTQ_FARM_TEST_ADDR") else {
        return;
    };
    let delay: u64 = std::env::var("EFTQ_FARM_TEST_DELAY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let driver = Fig12Driver::new(false);
    let _ = run_sweep(&Fig12Driver::spec(false), &worker_opts(&addr, 1), |p, _| {
        std::thread::sleep(Duration::from_millis(delay));
        driver.eval(p)
    });
}

/// Child-process body for the SIGKILL-the-coordinator test: coordinates
/// the fig12 farm on `EFTQ_FARM_TEST_ADDR`, streaming (slowed) rows
/// into `EFTQ_FARM_TEST_ARTIFACT` until the parent kills it. A no-op
/// under a normal test run (env unset).
#[test]
fn helper_farm_coordinator_child() {
    let Ok(addr) = std::env::var("EFTQ_FARM_TEST_ADDR") else {
        return;
    };
    let artifact = PathBuf::from(std::env::var("EFTQ_FARM_TEST_ARTIFACT").unwrap());
    let delay: u64 = std::env::var("EFTQ_FARM_TEST_DELAY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let driver = Fig12Driver::new(false);
    let _ = run_sweep(
        &Fig12Driver::spec(false),
        &farm_opts(&addr, 1, &artifact),
        |p, _| {
            std::thread::sleep(Duration::from_millis(delay));
            driver.eval(p)
        },
    );
}

#[test]
fn sigkilled_worker_mid_lease_is_re_leased_and_the_artifact_converges() {
    // Satellite 2a: a worker dies by real SIGKILL while holding a lease;
    // the coordinator re-leases its points and finishes byte-identical.
    let path = tmp("farm-sigkill-worker.jsonl");
    let _ = std::fs::remove_file(&path);
    let addr = "127.0.0.1:47330";
    let driver = Fig12Driver::new(false);
    let spec = Fig12Driver::spec(false);
    std::thread::scope(|scope| {
        let coordinator = scope.spawn(|| {
            // The coordinator's own worker thread is slowed too, so the
            // sweep is guaranteed to still be running when the kill
            // lands (the fast path would otherwise drain the 18-point
            // grid before the child process even joins).
            run_sweep(&spec, &farm_opts(addr, 1, &path), |p, _| {
                std::thread::sleep(Duration::from_millis(150));
                driver.eval(p)
            })
        });
        // The child worker computes one (slowed) point per ~400 ms;
        // killing it once a few rows have streamed catches it mid-lease
        // with near certainty — and even the worst-case timing (killed
        // between leases) still exercises the disconnect-requeue path.
        let mut child = spawn_helper(
            "helper_farm_worker_child",
            &[
                ("EFTQ_FARM_TEST_ADDR", addr.to_string()),
                ("EFTQ_FARM_TEST_DELAY_MS", "400".to_string()),
            ],
        );
        let deadline = Instant::now() + Duration::from_secs(60);
        while streamed_rows(&path) < 3 {
            assert!(Instant::now() < deadline, "farm never streamed rows");
            std::thread::sleep(Duration::from_millis(25));
        }
        child.kill().expect("SIGKILL the worker");
        let status = child.wait().unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::process::ExitStatusExt;
            assert_eq!(status.signal(), Some(9), "worker died by SIGKILL");
        }
        let report = coordinator.join().unwrap().unwrap();
        assert_eq!(report.rows.len(), 18);
    });
    assert_eq!(std::fs::read(&path).unwrap(), baseline_bytes());
}

#[test]
fn sigkilled_coordinator_resumes_without_recomputing_streamed_rows() {
    // Satellite 2b: kill the coordinator mid-run; --resume from its
    // partial artifact completes the grid, recomputing only the points
    // whose rows never hit the disk.
    let path = tmp("farm-sigkill-coordinator.jsonl");
    let _ = std::fs::remove_file(&path);
    let addr = "127.0.0.1:47331";
    let mut child = spawn_helper(
        "helper_farm_coordinator_child",
        &[
            ("EFTQ_FARM_TEST_ADDR", addr.to_string()),
            ("EFTQ_FARM_TEST_ARTIFACT", path.display().to_string()),
            ("EFTQ_FARM_TEST_DELAY_MS", "120".to_string()),
        ],
    );
    // Wait until a few rows have streamed, then kill. Generous deadline:
    // the child also has to compile the fig12 artifacts once.
    let deadline = Instant::now() + Duration::from_secs(60);
    while streamed_rows(&path) < 4 {
        assert!(Instant::now() < deadline, "coordinator never streamed rows");
        assert!(
            child.try_wait().unwrap().is_none(),
            "coordinator exited before the kill"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    child.kill().expect("SIGKILL the coordinator");
    child.wait().unwrap();

    let streamed = streamed_rows(&path);
    assert!(
        (4..18).contains(&streamed),
        "kill landed mid-run ({streamed} rows streamed)"
    );
    // Resume locally (no farm needed — the artifact is the interface),
    // counting evaluations: none of the streamed points may recompute.
    let evals = AtomicUsize::new(0);
    let driver = Fig12Driver::new(false);
    let report = run_sweep(
        &Fig12Driver::spec(false),
        &SweepOptions {
            threads: 4,
            artifact: Some(path.clone()),
            ..SweepOptions::default()
        },
        |p, _| {
            evals.fetch_add(1, Ordering::Relaxed);
            driver.eval(p)
        },
    )
    .unwrap();
    assert_eq!(report.resumed, streamed);
    assert_eq!(evals.load(Ordering::Relaxed), 18 - streamed);
    assert_eq!(report.rows.len(), 18);
    // A kill mid-write can leave a torn final line; the resume then
    // quarantines it (own line) and the byte-exact comparison no longer
    // applies — the row *content* must still converge exactly.
    if report.malformed_lines == 0 {
        assert_eq!(std::fs::read(&path).unwrap(), baseline_bytes());
    } else {
        let reference: Vec<String> = String::from_utf8(baseline_bytes())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        let survivors: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .filter(|l| parse_row(l).is_ok())
            .map(str::to_string)
            .collect();
        assert_eq!(survivors, reference);
    }
}

/// Reads one protocol message from a chaos client's socket.
fn chaos_recv(reader: &mut BufReader<TcpStream>) -> Msg {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    Msg::decode(line.trim_end()).unwrap()
}

#[test]
fn hostile_wire_traffic_cannot_corrupt_the_artifact() {
    // Satellite 3, live half: while a legitimate local worker computes
    // the sweep, a chaos client floods the coordinator with torn lines,
    // garbage JSON, unknown points, duplicate completions and a lease it
    // abandons mid-flight. The artifact must not move by one byte.
    let path = tmp("farm-chaos.jsonl");
    let _ = std::fs::remove_file(&path);
    let addr = "127.0.0.1:47332";
    let driver = Fig12Driver::new(false);
    let spec = Fig12Driver::spec(false);
    let opts = SweepOptions {
        lease_secs: 0.4, // fast re-lease of whatever chaos abandons
        ..farm_opts(addr, 1, &path)
    };
    std::thread::scope(|scope| {
        let coordinator = scope.spawn(|| run_sweep(&spec, &opts, |p, _| driver.eval(p)));
        let chaos = scope.spawn(|| {
            let chaos_driver = Fig12Driver::new(false);
            let mut retries = 0;
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(_) if retries < 100 => {
                        retries += 1;
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => panic!("chaos client cannot connect: {e}"),
                }
            };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            let send = |w: &mut TcpStream, s: &str| {
                w.write_all(s.as_bytes()).unwrap();
                w.flush().unwrap();
            };
            // A connection that never says hello is rejected outright.
            {
                let pre = TcpStream::connect(addr).unwrap();
                let mut pre_r = BufReader::new(pre.try_clone().unwrap());
                let mut pre_w = pre;
                pre_w.write_all(b"{\"row\":\"~farm-request\"}\n").unwrap();
                assert!(matches!(chaos_recv(&mut pre_r), Msg::Reject { .. }));
            }
            // Legitimate handshake, then hostility.
            send(
                &mut w,
                &format!(
                    "{}\n",
                    Msg::Hello {
                        spec: "fig12".into(),
                        config: Some("reduced".into()),
                        worker: "chaos".into(),
                    }
                    .encode()
                ),
            );
            assert!(matches!(chaos_recv(&mut reader), Msg::Welcome { .. }));
            // Garbage: unparsable JSON, a torn line delivered in two
            // writes straddling the read timeout, binary noise.
            send(&mut w, "this is not json\n");
            send(&mut w, "{\"row\":\"~farm-done\",\"lease\":1,");
            std::thread::sleep(Duration::from_millis(300));
            send(&mut w, "TORN\n");
            send(&mut w, "{}\n\n");
            // Completions for a point that does not exist, and with an
            // unparsable payload.
            send(
                &mut w,
                &format!(
                    "{}\n",
                    Msg::Done {
                        lease: 999,
                        point: 424242,
                        attempt: 1,
                        secs: 0.1,
                        data: "{\"row\":\"fig12\"}".into(),
                    }
                    .encode()
                ),
            );
            send(
                &mut w,
                &format!(
                    "{}\n",
                    Msg::Done {
                        lease: 999,
                        point: 0,
                        attempt: 1,
                        secs: 0.1,
                        data: "{not a row".into(),
                    }
                    .encode()
                ),
            );
            // A completion whose row does not cover the claimed point
            // (the payload is point 1's row): must be rejected by the
            // row contract, not written.
            let wrong = chaos_driver.eval(&spec.point(1)).to_json_row();
            send(
                &mut w,
                &format!(
                    "{}\n",
                    Msg::Done {
                        lease: 999,
                        point: 0,
                        attempt: 1,
                        secs: 0.1,
                        data: wrong,
                    }
                    .encode()
                ),
            );
            // Take a real lease, complete its first point twice (the
            // second is a duplicate — even when the bytes are right),
            // then abandon the rest and vanish mid-protocol.
            send(&mut w, &format!("{}\n", Msg::Request.encode()));
            match chaos_recv(&mut reader) {
                Msg::Grant { lease, points, .. } => {
                    let row = chaos_driver.eval(&spec.point(points[0])).to_json_row();
                    let done = Msg::Done {
                        lease,
                        point: points[0],
                        attempt: 1,
                        secs: 0.1,
                        data: row,
                    }
                    .encode();
                    send(&mut w, &format!("{done}\n{done}\n"));
                }
                // The local worker may already have drained the queue.
                Msg::Wait { .. } | Msg::Fin => {}
                other => panic!("unexpected reply to chaos request: {other:?}"),
            }
            // Vanish without a goodbye: disconnect-requeue path.
            drop(w);
        });
        chaos.join().unwrap();
        let report = coordinator.join().unwrap().unwrap();
        assert_eq!(report.rows.len(), 18);
    });
    assert_eq!(std::fs::read(&path).unwrap(), baseline_bytes());
}

#[test]
fn lease_race_after_expiry_is_first_writer_wins() {
    // Satellite 4, through the public API: two workers, a manual clock,
    // no sleeps. Worker A's lease on the last point expires; worker B
    // gets the re-issue; both finish. Exactly one completion is
    // accepted, in either arrival order.
    for stale_first in [true, false] {
        let mut farm = FarmState::new(&[0, 1, 2], 1.0);
        let a = farm.grant(1, 0.0).unwrap();
        assert_eq!(farm.complete(a.lease, a.points[0], 0.2), Completion::Fresh);
        let a2 = farm.grant(1, 0.2).unwrap();
        assert_eq!(
            farm.complete(a2.lease, a2.points[0], 0.2),
            Completion::Fresh
        );
        // A takes the last point at t=0.4 and goes silent.
        let stale = farm.grant(1, 0.4).unwrap();
        assert_eq!(farm.grant(2, 0.5), None, "nothing left to lease");
        assert!(!farm.is_done());
        // At t=1.4 the lease expires; B gets the re-issue.
        assert_eq!(farm.expire(1.4), 1);
        let reissue = farm.grant(2, 1.4).unwrap();
        assert_eq!(reissue.points, stale.points);
        let (first, second) = if stale_first {
            (stale.lease, reissue.lease)
        } else {
            (reissue.lease, stale.lease)
        };
        assert_eq!(
            farm.complete(first, stale.points[0], 0.2),
            Completion::Fresh,
            "stale_first = {stale_first}"
        );
        assert_eq!(
            farm.complete(second, stale.points[0], 0.2),
            Completion::Duplicate,
            "stale_first = {stale_first}"
        );
        assert!(farm.is_done());
        assert_eq!(farm.discarded(), 1);
    }
}

/// One random farm operation for the state-machine fuzz.
#[derive(Clone, Copy, Debug)]
enum Op {
    Grant(u8),
    /// Complete the `k`-th outstanding grant's first point (possibly
    /// again — duplicates are the point of the fuzz).
    Complete(u8),
    Expire,
    Disconnect(u8),
    /// Complete a point id outside the selection.
    Unknown(u8),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite 3, decoder half: no byte sequence panics the wire
    /// decoder — truncations and splices of valid messages included.
    #[test]
    fn arbitrary_wire_bytes_never_panic_the_decoder(
        noise in proptest::collection::vec(0u8..=255, 0..160),
        cut in 0usize..400,
        splice in 0usize..400,
    ) {
        let junk = String::from_utf8_lossy(&noise).into_owned();
        let _ = Msg::decode(&junk);
        // Truncate a valid message at an arbitrary char boundary…
        let valid = Msg::Done {
            lease: 3,
            point: 7,
            attempt: 1,
            secs: 0.125,
            data: "{\"row\":\"fig12\",\"j\":0.25,\"s\":\"a\\\"b\"}".into(),
        }
        .encode();
        let k = valid
            .char_indices()
            .map(|(i, _)| i)
            .chain([valid.len()])
            .nth(cut % (valid.chars().count() + 1))
            .unwrap();
        let _ = Msg::decode(&valid[..k]);
        // …and splice random bytes into the middle of it.
        let mut torn = String::from(&valid[..k]);
        torn.push_str(&junk);
        torn.push_str(&valid[valid.len() - (splice % (valid.len() - k + 1))..]);
        let _ = Msg::decode(&torn);
    }

    /// Every structurally valid message round-trips through the wire
    /// encoding, whatever its field contents.
    #[test]
    fn random_messages_round_trip(
        lease in 0u64..u64::MAX,
        point in 0usize..1_000_000,
        secs in 0.0f64..10_000.0,
        pts in proptest::collection::vec(0usize..100_000, 1..40),
        text in proptest::collection::vec(0u8..=255, 0..80),
    ) {
        let data = String::from_utf8_lossy(&text).into_owned();
        for msg in [
            Msg::Hello { spec: data.clone(), config: Some(data.clone()), worker: data.clone() },
            Msg::Welcome { seed: lease, points: point },
            Msg::Reject { reason: data.clone() },
            Msg::Grant { lease, points: pts.clone(), expires_s: secs },
            Msg::Wait { retry_s: secs },
            Msg::Done { lease, point, attempt: 1, secs, data: data.clone() },
        ] {
            let line = msg.encode();
            prop_assert_eq!(Msg::decode(&line).unwrap(), msg, "{}", line);
        }
    }

    /// Satellite 3, state-machine half: under arbitrary interleavings of
    /// grants, (duplicate/stale/unknown) completions, expiries and
    /// disconnects, the farm accepts each selected point exactly once
    /// and always drains to completion.
    #[test]
    fn farm_state_survives_arbitrary_op_interleavings(
        raw in proptest::collection::vec((0u8..5, 0u8..8), 0..120),
    ) {
        let pids = [3usize, 5, 8, 13, 21];
        let mut farm = FarmState::new(&pids, 2.0);
        let mut clock = 0.0f64;
        let mut grants: Vec<(u64, Vec<usize>)> = Vec::new();
        let mut fresh = 0usize;
        let ops = raw.iter().map(|&(op, arg)| match op {
            0 => Op::Grant(arg),
            1 => Op::Complete(arg),
            2 => Op::Expire,
            3 => Op::Disconnect(arg),
            _ => Op::Unknown(arg),
        });
        for op in ops {
            clock += 0.5;
            match op {
                Op::Grant(w) => {
                    if let Some(g) = farm.grant(u64::from(w), clock) {
                        grants.push((g.lease, g.points));
                    }
                }
                Op::Complete(k) if !grants.is_empty() => {
                    let (lease, points) = grants[usize::from(k) % grants.len()].clone();
                    match farm.complete(lease, points[0], 0.1) {
                        Completion::Fresh => fresh += 1,
                        Completion::Duplicate => {}
                        Completion::Unknown => {
                            prop_assert!(false, "granted point became unknown")
                        }
                    }
                }
                Op::Complete(_) => {}
                Op::Expire => {
                    farm.expire(clock);
                }
                Op::Disconnect(w) => {
                    farm.disconnect(u64::from(w));
                }
                Op::Unknown(k) => {
                    prop_assert_eq!(
                        farm.complete(1, 1000 + usize::from(k), 0.1),
                        Completion::Unknown
                    );
                }
            }
            prop_assert_eq!(farm.remaining(), pids.len() - fresh);
        }
        // Drain: however the fuzz left the leases, expiry + grant must
        // reach every missing point, each exactly once.
        let mut guard = 0;
        while !farm.is_done() {
            clock += 5.0;
            farm.expire(clock);
            while let Some(g) = farm.grant(9, clock) {
                for pid in g.points {
                    prop_assert_eq!(farm.complete(g.lease, pid, 0.1), Completion::Fresh);
                    fresh += 1;
                }
            }
            guard += 1;
            prop_assert!(guard < 100, "farm failed to drain");
        }
        prop_assert_eq!(fresh, pids.len(), "each point accepted exactly once");
    }
}

#[test]
fn worker_mode_rejects_a_mismatched_sweep() {
    // A worker for the wrong figure (or scale) must be refused at the
    // handshake, before it can compute a single point.
    let path = tmp("farm-mismatch.jsonl");
    let _ = std::fs::remove_file(&path);
    let addr = "127.0.0.1:47333";
    let driver = Fig12Driver::new(false);
    let spec = Fig12Driver::spec(false);
    std::thread::scope(|scope| {
        let coordinator =
            scope.spawn(|| run_sweep(&spec, &farm_opts(addr, 2, &path), |p, _| driver.eval(p)));
        let stranger = scope.spawn(|| {
            let full_spec = Fig12Driver::spec(true); // config "full"
            let full_driver = Fig12Driver::new(true);
            run_sweep(&full_spec, &worker_opts(addr, 1), |p, _| {
                full_driver.eval(p)
            })
        });
        let err = stranger.join().unwrap().unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        assert!(err.contains("full") && err.contains("reduced"), "{err}");
        coordinator.join().unwrap().unwrap();
    });
    assert_eq!(std::fs::read(&path).unwrap(), baseline_bytes());
}

#[test]
fn farm_resumes_a_partial_artifact_without_recomputing() {
    // --resume composes with --farm: a coordinator started on a partial
    // artifact farms out only the missing points.
    let path = tmp("farm-resume.jsonl");
    let _ = std::fs::remove_file(&path);
    let reference = String::from_utf8(baseline_bytes()).unwrap();
    let head: Vec<&str> = reference.lines().take(8).collect(); // stamp + 7 rows
    std::fs::write(&path, format!("{}\n", head.join("\n"))).unwrap();
    let driver = Fig12Driver::new(false);
    let evals = Mutex::new(Vec::new());
    let report = run_sweep(
        &Fig12Driver::spec(false),
        &farm_opts("127.0.0.1:47334", 2, &path),
        |p, _| {
            evals.lock().unwrap().push(p.id);
            driver.eval(p)
        },
    )
    .unwrap();
    assert_eq!(report.resumed, 7);
    assert_eq!(report.rows.len(), 18);
    let mut evaluated = evals.into_inner().unwrap();
    evaluated.sort_unstable();
    assert_eq!(evaluated, (7..18).collect::<Vec<_>>());
    assert_eq!(std::fs::read(&path).unwrap(), baseline_bytes());
}
