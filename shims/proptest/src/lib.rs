//! Offline stand-in for the `proptest` crate.
//!
//! The container cannot reach crates.io, so the workspace vendors the
//! subset of proptest the integration tests use: [`Strategy`] with
//! `prop_map`, range and tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (stable across runs — no persisted failure file), and
//! there is **no shrinking**; a failing case panics with the assertion
//! message like a plain `#[test]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Re-exports for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (no shrinking, so this is a
    /// plain functor map).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A fixed value used as a strategy (proptest's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// Number of elements a collection strategy may generate: a fixed
    /// count or a half-open range, mirroring `proptest::collection::SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                lo: len,
                hi: len + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            SizeRange { lo, hi: hi + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements are drawn from `element` and whose
    /// length is drawn from `size` (a fixed `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::{SeedableRng, StdRng};

    /// Builds the deterministic RNG for one case of one property.
    ///
    /// The seed mixes a stable hash of the test name with the case index,
    /// so every property sees an independent, reproducible stream.
    pub fn rng_for_case(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

/// Property-test entry point; a minimal re-implementation of
/// `proptest::proptest!`.
///
/// Supports the form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0usize..10, y in -1.0..1.0f64) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng =
                        $crate::test_runner::rng_for_case(stringify!($name), __case);
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a property holds; panics with the formatted message otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Just;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 2usize..9, f in -3.0..3.0f64) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-3.0..3.0).contains(&f));
        }

        #[test]
        fn tuples_and_vec_compose(
            v in crate::collection::vec((0usize..4, -1.0..1.0f64), 6),
            tag in Just(7u8),
        ) {
            prop_assert_eq!(v.len(), 6);
            prop_assert_eq!(tag, 7);
            for (k, f) in v {
                prop_assert!(k < 4);
                prop_assert!((-1.0..1.0).contains(&f));
            }
        }

        #[test]
        fn prop_map_applies(double in (0usize..10).prop_map(|x| 2 * x)) {
            prop_assert_eq!(double % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_variant_works(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name_and_index() {
        use crate::Strategy;
        let a = (0u64..u64::MAX).generate(&mut crate::test_runner::rng_for_case("t", 3));
        let b = (0u64..u64::MAX).generate(&mut crate::test_runner::rng_for_case("t", 3));
        let c = (0u64..u64::MAX).generate(&mut crate::test_runner::rng_for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
