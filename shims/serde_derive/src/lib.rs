//! Offline stand-in for `serde_derive`: no-op `Serialize` / `Deserialize`
//! derive macros.
//!
//! The container cannot reach crates.io, and nothing in the workspace
//! serializes yet — the derives on the model structs only declare intent.
//! These macros accept the same derive positions and expand to nothing,
//! so the annotations compile today and can be switched to the real
//! `serde_derive` without touching any model source.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
