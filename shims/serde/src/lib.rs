//! Offline stand-in for the `serde` facade crate.
//!
//! Re-exports the no-op [`Serialize`] / [`Deserialize`] derive macros
//! from the vendored `serde_derive` shim so the workspace's
//! `#[derive(Serialize, Deserialize)]` annotations compile without
//! crates.io access. No serialization framework is provided — nothing in
//! the workspace serializes yet. Swapping this shim for real `serde`
//! (with the `derive` feature) requires no source changes in the models.

pub use serde_derive::{Deserialize, Serialize};
