//! Offline stand-in for the `criterion` crate.
//!
//! The container cannot reach crates.io, so the workspace vendors the
//! subset of the Criterion API its benches use: [`Criterion`],
//! benchmark groups with `sample_size`/`bench_function`/
//! `bench_with_input`/`finish`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a short warm-up, then
//! `sample_size` timed samples whose median is printed as a single line
//! per benchmark. There are no HTML reports, statistics, or baselines;
//! when the real crate becomes available, dropping the shim restores all
//! of that without touching the bench sources.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from the standard library.
pub use std::hint::black_box;

/// Recorded `(benchmark id, nanoseconds)` pairs for the JSON artifact.
/// In bench mode the value is the median sample; in `-- --test` smoke
/// mode it is the single validation run's wall time.
static RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

fn record(id: &str, nanos: u128) {
    RESULTS
        .lock()
        .expect("bench results poisoned")
        .push((id.to_string(), nanos));
}

/// Writes every recorded benchmark timing as a JSON artifact when the
/// `BENCH_JSON` environment variable names a directory: the file is
/// `<dir>/BENCH_<bench-binary>.json`, one `{"id", "ns"}` object per
/// benchmark. Called automatically by [`criterion_main!`]; a no-op when
/// the variable is unset. Timings from `-- --test` smoke runs are single
/// unwarmed executions — treat them as coarse canaries, not medians.
pub fn write_json_artifact() {
    let Ok(dir) = std::env::var("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("bench results poisoned");
    if results.is_empty() {
        return;
    }
    let mut json = String::from("[\n");
    for (i, (id, ns)) in results.iter().enumerate() {
        let id = id.replace('\\', "\\\\").replace('"', "\\\"");
        json.push_str(&format!(
            "  {{\"id\": \"{id}\", \"ns\": {ns}}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    let path = format!("{dir}/BENCH_{}.json", bench_binary_name());
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        eprintln!("warning: could not write bench artifact {path}: {e}");
    }
}

/// The bench binary's logical name: the executable stem with cargo's
/// trailing `-<hex hash>` stripped (`simulators-1a2b…` → `simulators`).
fn bench_binary_name() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".to_string());
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() >= 8 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem,
    }
}

/// Identifier for a parameterized benchmark (`<function>/<parameter>`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Whether the binary was invoked as `cargo bench -- --test`: run each
/// routine once to prove it still works, skipping all timing. Mirrors the
/// real Criterion's test mode so CI can smoke the benches cheaply.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_benchmark(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if test_mode() {
        let mut once = Bencher {
            iters_per_sample: 1,
            sample_size: 1,
            samples: Vec::with_capacity(1),
        };
        f(&mut once);
        record(id, once.samples.first().map_or(0, |d| d.as_nanos()));
        println!("test:  {id:<48} ok");
        return;
    }
    // Warm-up pass: one untimed sample so lazy setup is excluded.
    let mut warmup = Bencher {
        iters_per_sample: 1,
        sample_size: 1,
        samples: Vec::with_capacity(1),
    };
    f(&mut warmup);
    let mut b = Bencher {
        iters_per_sample: 1,
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    record(id, median.as_nanos());
    println!(
        "bench: {id:<48} median {median:>12.2?} ({} samples)",
        b.samples.len()
    );
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench target (requires `harness = false`).
/// After all groups run, timings are dumped as a JSON artifact if
/// `BENCH_JSON` is set (see [`write_json_artifact`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_artifact();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        Criterion::default().bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).id, "f/12");
    }

    #[test]
    fn results_are_recorded_and_artifact_written() {
        Criterion::default().bench_function("artifact-smoke", |b| b.iter(|| black_box(1 + 1)));
        assert!(RESULTS
            .lock()
            .unwrap()
            .iter()
            .any(|(id, _)| id == "artifact-smoke"));
        let dir = std::env::temp_dir().join("criterion-shim-artifact-test");
        std::env::set_var("BENCH_JSON", &dir);
        write_json_artifact();
        std::env::remove_var("BENCH_JSON");
        let file = std::fs::read_dir(&dir)
            .expect("artifact dir exists")
            .filter_map(Result::ok)
            .find(|e| e.file_name().to_string_lossy().starts_with("BENCH_"))
            .expect("artifact file written");
        let body = std::fs::read_to_string(file.path()).unwrap();
        assert!(body.contains("\"id\": \"artifact-smoke\""), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_name_strips_cargo_hash() {
        // The test binary itself is `criterion-<hash>`, so the helper
        // must strip the hash here too.
        let name = bench_binary_name();
        assert!(!name.is_empty());
        assert!(
            !name
                .rsplit_once('-')
                .is_some_and(|(_, h)| h.len() >= 8 && h.bytes().all(|b| b.is_ascii_hexdigit())),
            "{name}"
        );
    }
}
