//! Offline stand-in for the `criterion` crate.
//!
//! The container cannot reach crates.io, so the workspace vendors the
//! subset of the Criterion API its benches use: [`Criterion`],
//! benchmark groups with `sample_size`/`bench_function`/
//! `bench_with_input`/`finish`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a short warm-up, then
//! `sample_size` timed samples whose median is printed as a single line
//! per benchmark. There are no HTML reports, statistics, or baselines;
//! when the real crate becomes available, dropping the shim restores all
//! of that without touching the bench sources.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from the standard library.
pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`<function>/<parameter>`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Whether the binary was invoked as `cargo bench -- --test`: run each
/// routine once to prove it still works, skipping all timing. Mirrors the
/// real Criterion's test mode so CI can smoke the benches cheaply.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_benchmark(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if test_mode() {
        let mut once = Bencher {
            iters_per_sample: 1,
            sample_size: 1,
            samples: Vec::with_capacity(1),
        };
        f(&mut once);
        println!("test:  {id:<48} ok");
        return;
    }
    // Warm-up pass: one untimed sample so lazy setup is excluded.
    let mut warmup = Bencher {
        iters_per_sample: 1,
        sample_size: 1,
        samples: Vec::with_capacity(1),
    };
    f(&mut warmup);
    let mut b = Bencher {
        iters_per_sample: 1,
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench: {id:<48} median {median:>12.2?} ({} samples)",
        b.samples.len()
    );
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench target (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        Criterion::default().bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).id, "f/12");
    }
}
