//! Offline stand-in for the `crossbeam` crate.
//!
//! The container cannot reach crates.io, so the workspace vendors the one
//! crossbeam API it uses: [`thread::scope`] with scope-receiving spawn
//! closures and a `Result` return that captures child panics. It is a
//! thin wrapper over `std::thread::scope` (stable since Rust 1.63, which
//! is why upstream crossbeam deprecated its own version).

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope: `Err` carries the payload of a panicking child.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; unlike `std`, crossbeam passes it to each spawned
    /// closure as well.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further siblings, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// enclosing stack frame; joins them all before returning.
    ///
    /// Returns `Err` if any spawned thread (or `f` itself) panicked.
    /// Unlike real crossbeam, the payload of a *child* panic is
    /// `std::thread::scope`'s generic re-panic payload, not the child's
    /// own — callers that downcast payloads need the real crate. In-tree
    /// callers only check `is_err()`/`expect`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let mut out = vec![0u64; 6];
        thread::scope(|scope| {
            for (slot, chunk) in out.chunks_mut(2).zip(data.chunks(2)) {
                scope.spawn(move |_| {
                    for (s, v) in slot.iter_mut().zip(chunk) {
                        *s = v * 10;
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(out, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let r = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u64).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .expect("no panics");
        assert_eq!(r, 42);
    }
}
