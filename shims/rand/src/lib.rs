//! Offline stand-in for the `rand` crate.
//!
//! The reproduction container has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and a deterministic [`rngs::StdRng`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 generator real `rand` uses, so streams differ from upstream
//! `rand`, but every consumer in this workspace only relies on
//! *determinism for a fixed seed*, never on a specific stream.

/// A source of random 64-bit words. The object-safe core trait; all
/// convenience methods live on [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
///
/// Mirroring real `rand`, [`SampleRange`] is implemented *blanket* over
/// this trait (one impl per range shape, not per element type) so that
/// integer-literal ranges like `0..n` unify with the surrounding usage
/// instead of falling back to `i32`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Draws uniformly from `[0, span)` using a widening multiply.
///
/// The modulo bias of this method is at most `span / 2^64`, which is
/// negligible for every span used in the workspace.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive && span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = if inclusive { span + 1 } else { span };
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                lo + (hi - lo) * (f64::sample_standard(rng) as $t)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution for `T`
    /// (`f64`/`f32` in `[0, 1)`, uniform bits for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministically).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, per the xoshiro authors'
            // recommendation, so low-entropy seeds still give a good state.
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut w = z;
                w = (w ^ (w >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                w = (w ^ (w >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                w ^ (w >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_and_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let k = rng.gen_range(3..9usize);
            assert!((3..9).contains(&k));
            let v = rng.gen_range(0..=3u8);
            assert!(v <= 3);
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = draw(&mut rng);
        let by_ref = &mut rng;
        let _ = draw(by_ref);
    }
}
